"""Phase 1: parse every project file once into cross-file *facts*.

A fact is a located observation about the code — "line 48 of
``core/trainer.py`` imports ``repro.runtime.parallel`` at module
level", "line 568 of ``serve/server.py`` passes the string
``hw.weights.stale`` to a fault-site call".  Rules
(:mod:`repro.analysis.lint.rules`) are pure functions over the
collected :class:`ProjectFacts`; they never re-read source, so adding a
rule costs one pass over in-memory facts, not another parse of the
tree.

Everything here is stdlib-only and purely syntactic: the catalogs the
rules check against (``KNOWN_SITES``, the run-table columns, the
instrument table) are themselves *parsed* out of the project — from the
AST of ``repro/common/faults.py`` / ``repro/common/runtable.py`` and
the markdown tables of ``docs/observability.md`` — never imported, so
the linter runs on a tree that does not import (or before numpy
exists).

For tests, :func:`build_facts` accepts an in-memory ``sources``
mapping (repo-relative path -> text) instead of a disk root; catalog
overrides live on :class:`LintConfig`.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path

__all__ = [
    "LintConfig",
    "ModuleFacts",
    "ProjectFacts",
    "Ref",
    "build_facts",
    "parse_instrument_catalog",
    "parse_string_tuple",
]

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

#: Layer of each ``repro`` subpackage.  A module-level import must target
#: a *strictly lower* layer (or its own package); function-level imports
#: are the sanctioned pattern for the few upward edges
#: (``common.faults`` -> ``obs`` events, ``core.trainer`` -> ``runtime``).
DEFAULT_LAYERS = {
    "common": 0,
    "obs": 1,
    "core": 2,
    "analysis": 3,
    "autograd": 3,
    "data": 3,
    "hardware": 3,
    "runtime": 4,
    "serve": 5,
    "experiments": 6,
}

#: Third-party imports allowed anywhere under ``src/repro``.
DEFAULT_EXTERNAL_ALLOWED = frozenset({"numpy"})

#: Per-package third-party grandfather list (scipy predates this linter
#: in exactly these packages; h5py is reserved for the data loaders).
DEFAULT_EXTERNAL_PER_PACKAGE = {
    "core": frozenset({"scipy"}),
    "data": frozenset({"scipy", "h5py"}),
    "hardware": frozenset({"scipy"}),
}

#: Files exempt from the determinism rule: the seeded RNG wrapper is
#: where ``numpy.random`` legitimately lives.
DEFAULT_DETERMINISM_EXEMPT = ("src/repro/common/rng.py",)

#: Files whose run-table column references the schema rule checks.
DEFAULT_RUNTABLE_FILES = (
    "src/repro/experiments/harness.py",
    "src/repro/experiments/benchjson.py",
)

#: Wall-clock reads the determinism rule flags when *called* directly.
#: ``time.monotonic`` is deliberately absent: timeout plumbing needs a
#: monotonic clock and never lands in results; measurement must go
#: through an injectable timer (a ``timer=time.perf_counter`` *default
#: reference* is fine — only the direct call is nondeterministic).
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Call names that take a fault-site string as their first argument.
FAULT_SITE_CALLS = frozenset({"hit", "should_fire", "maybe_raise"})

#: Dotted-lowercase shape of a fault site / instrument name.
SITE_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Inline suppression: ``# repro: disable=<rule>[,<rule>...]``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_\-, ]+)")

#: Whole-file suppression: ``# repro: disable-file=<rule>`` on a
#: comment-only line (for files that exist to exercise a rule's target,
#: e.g. the fault-plan unit tests and their synthetic site names).
FILE_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*disable-file=([A-Za-z0-9_\-, ]+)")


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """What to scan and which catalogs to check against.

    Every field has a project-true default; tests override the catalogs
    when linting synthetic in-memory trees.
    """

    scan_roots: tuple = ("src/repro", "tests", "tools", "benchmarks",
                        "examples")
    src_prefix: str = "src/repro/"
    layers: dict = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_LAYERS))
    external_allowed: frozenset = DEFAULT_EXTERNAL_ALLOWED
    external_per_package: dict = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_EXTERNAL_PER_PACKAGE))
    determinism_exempt: tuple = DEFAULT_DETERMINISM_EXEMPT
    runtable_files: tuple = DEFAULT_RUNTABLE_FILES
    faults_module: str = "src/repro/common/faults.py"
    runtable_module: str = "src/repro/common/runtable.py"
    observability_doc: str = "docs/observability.md"
    #: Catalog overrides (``None`` = parse from the project itself).
    known_sites: tuple | None = None
    run_table_columns: tuple | None = None
    instrument_catalog: "InstrumentCatalog | None" = None


# ---------------------------------------------------------------------------
# Fact records
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Ref:
    """One named occurrence at a location."""

    name: str
    line: int
    col: int


@dataclasses.dataclass(frozen=True)
class ImportFact:
    target: str        # dotted module ("repro.runtime.parallel", "numpy")
    root: str          # first component ("repro", "numpy")
    line: int
    col: int
    toplevel: bool     # module-level (True) vs function/method-level
    #: the names an ``from X import a, b`` pulled — any of them may be a
    #: submodule of ``target`` (``from repro.core import trainer``).
    names: tuple = ()


@dataclasses.dataclass(frozen=True)
class InstrumentFact:
    name: str          # exact name, or the static prefix of an f-string
    kind: str          # counter | gauge | histogram | event | span
    line: int
    col: int
    prefix: bool       # True when ``name`` is only the f-string prefix


@dataclasses.dataclass(frozen=True)
class MixedAttrFact:
    """A class attribute written both inside and outside a lock."""

    cls: str
    attr: str
    guarded: Ref
    unguarded: Ref


@dataclasses.dataclass
class ModuleFacts:
    """Everything phase 2 needs to know about one file."""

    path: str                       # repo-relative posix path
    module: str | None = None       # dotted module for src files
    package: str | None = None      # repro subpackage ("core", ...)
    is_package: bool = False        # an ``__init__.py`` file
    parse_error: str | None = None
    imports: list = dataclasses.field(default_factory=list)
    fault_site_refs: list = dataclasses.field(default_factory=list)
    site_literals: set = dataclasses.field(default_factory=set)
    instruments: list = dataclasses.field(default_factory=list)
    clock_calls: list = dataclasses.field(default_factory=list)
    rng_calls: list = dataclasses.field(default_factory=list)
    runtable_refs: list = dataclasses.field(default_factory=list)
    bare_acquires: list = dataclasses.field(default_factory=list)
    blocking_recvs: list = dataclasses.field(default_factory=list)
    mixed_attrs: list = dataclasses.field(default_factory=list)
    #: line -> (rule ids, comment_only) for ``# repro: disable=``.
    suppressions: dict = dataclasses.field(default_factory=dict)
    #: rule ids disabled for the whole file (``disable-file=``).
    file_suppressions: frozenset = frozenset()
    n_lines: int = 0

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is suppressed at ``line`` — file-wide, by
        a trailing comment on the line itself, or by a comment-only line
        just above."""
        if rule_id in self.file_suppressions \
                or "all" in self.file_suppressions:
            return True
        own = self.suppressions.get(line)
        if own and (rule_id in own[0] or "all" in own[0]):
            return True
        above = self.suppressions.get(line - 1)
        return bool(above and above[1]
                    and (rule_id in above[0] or "all" in above[0]))


@dataclasses.dataclass(frozen=True)
class InstrumentCatalog:
    """Names documented in ``docs/observability.md``."""

    exact: frozenset
    wildcard_prefixes: frozenset   # "serve." from a ``serve.*`` entry

    def covers(self, name: str) -> bool:
        if name in self.exact:
            return True
        return any(name.startswith(p) for p in self.wildcard_prefixes)

    def covers_prefix(self, prefix: str) -> bool:
        """Whether an f-string emission with this static prefix can only
        produce catalogued names we know about (approximation: some
        catalogued name or wildcard shares the prefix)."""
        if any(name.startswith(prefix) for name in self.exact):
            return True
        return any(p.startswith(prefix) or prefix.startswith(p)
                   for p in self.wildcard_prefixes)


@dataclasses.dataclass
class ProjectFacts:
    """Phase-1 output: per-file facts plus the project catalogs."""

    root: str
    modules: dict = dataclasses.field(default_factory=dict)
    known_sites: tuple = ()
    run_table_columns: tuple = ()
    instrument_catalog: InstrumentCatalog | None = None
    config: LintConfig = dataclasses.field(default_factory=LintConfig)

    def src_modules(self):
        prefix = self.config.src_prefix
        return [m for p, m in sorted(self.modules.items())
                if p.startswith(prefix)]

    def test_modules(self):
        return [m for p, m in sorted(self.modules.items())
                if p.startswith("tests/")]


# ---------------------------------------------------------------------------
# Catalog parsers (static — AST and markdown, never imports)
# ---------------------------------------------------------------------------

def parse_string_tuple(source: str, *names: str) -> tuple:
    """Concatenate the string-tuple assignments ``names`` from ``source``.

    Parses assignments like ``KNOWN_SITES = ("a", "b")`` out of a
    module's AST; raises ``ValueError`` when a requested name is missing
    or is not a tuple of string constants.
    """
    tree = ast.parse(source)
    found: dict[str, tuple] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in names:
                value = node.value
                if not isinstance(value, ast.Tuple) or not all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts):
                    raise ValueError(
                        f"{target.id} is not a tuple of string literals")
                found[target.id] = tuple(e.value for e in value.elts)
    missing = [n for n in names if n not in found]
    if missing:
        raise ValueError(f"string tuple(s) {missing} not found")
    out: tuple = ()
    for name in names:
        out += found[name]
    return out


_BACKTICK_RE = re.compile(r"`([^`]+)`")


def parse_instrument_catalog(markdown: str) -> InstrumentCatalog:
    """Extract the instrument + span/event name catalog from the
    ``docs/observability.md`` tables.

    Only the *first cell* of table rows is read; every backticked token
    in it that looks like a dotted name counts, with ``{...}`` label
    suffixes stripped and ``name.*`` entries kept as wildcards.
    """
    exact: set[str] = set()
    wildcards: set[str] = set()
    for line in markdown.splitlines():
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        first_cell = stripped.strip("|").split("|", 1)[0]
        if set(first_cell.strip()) <= {"-", " ", ":"}:
            continue  # the |---| separator row
        for token in _BACKTICK_RE.findall(first_cell):
            token = re.sub(r"\{[^}]*\}.*$", "", token).strip()
            if token.endswith(".*"):
                wildcards.add(token[:-1])  # keep the trailing dot
            elif SITE_RE.match(token):
                exact.add(token)
    return InstrumentCatalog(exact=frozenset(exact),
                             wildcard_prefixes=frozenset(wildcards))


# ---------------------------------------------------------------------------
# Per-file collector
# ---------------------------------------------------------------------------

def _const_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _fstring_prefix(node) -> str | None:
    """The leading constant text of an f-string, or ``None``."""
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return None
    head = node.values[0]
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        return head.value
    return None


_ROW_NAME_RE = re.compile(r"^(row|[A-Za-z0-9_]*_row)$")
_WHILE_TRUE = (True, 1)


class _Collector(ast.NodeVisitor):
    """One pass over one file's AST, filling a :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts):
        self.f = facts
        self.func_depth = 0
        self.while_true_depth = 0
        self.lock_with_depth = 0
        self.class_stack: list[str] = []
        self.in_init = False
        self.func_stack: list = []
        self._pending_recvs: list = []  # (Ref, enclosing function node)
        #: local alias -> dotted origin ("np" -> "numpy",
        #: "perf_counter" -> "time.perf_counter")
        self.aliases: dict[str, str] = {}
        #: (class, attr) -> {"guarded": Ref, "unguarded": Ref}
        self._attr_writes: dict = {}
        self._class_has_lock: set = set()

    # -- helpers -----------------------------------------------------------

    def _dotted(self, node) -> str | None:
        """Resolve a Name/Attribute chain to dotted text through the
        file's import aliases (``np.random.rand`` -> ``numpy.random.rand``)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def _record_import(self, target: str, node, toplevel: bool,
                       names: tuple = ()) -> None:
        self.f.imports.append(ImportFact(
            target=target, root=target.split(".")[0],
            line=node.lineno, col=node.col_offset, toplevel=toplevel,
            names=names))

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record_import(alias.name, node, self.func_depth == 0)
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Relative imports resolve against the *package*: for a
            # plain module that is the dotted name minus the leaf; for a
            # package ``__init__`` it is the dotted name itself.
            base = (self.f.module or "").split(".")
            if not self.f.is_package:
                base = base[:-1]
            drop = node.level - 1
            base = base[:len(base) - drop] if drop <= len(base) else []
            stem = ".".join(base + ([node.module] if node.module else []))
            if node.module:
                self._record_import(
                    stem, node, self.func_depth == 0,
                    names=tuple(a.name for a in node.names))
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = \
                        f"{stem}.{alias.name}"
            else:
                # ``from .. import obs``: the imported *names* are the
                # modules; record one edge per name.
                for alias in node.names:
                    target = f"{stem}.{alias.name}" if stem else alias.name
                    self._record_import(target, node, self.func_depth == 0)
                    self.aliases[alias.asname or alias.name] = target
        elif node.module:
            self._record_import(
                node.module, node, self.func_depth == 0,
                names=tuple(a.name for a in node.names))
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"

    # -- structure tracking ------------------------------------------------

    def _visit_function(self, node) -> None:
        self.func_depth += 1
        self.func_stack.append(node)
        was_init = self.in_init
        self.in_init = bool(self.class_stack) and node.name == "__init__"
        self._walk_body(node)
        self.in_init = was_init
        self.func_stack.pop()
        self.func_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self._walk_body(node)
        self.class_stack.pop()

    def visit_While(self, node: ast.While) -> None:
        is_true = (isinstance(node.test, ast.Constant)
                   and node.test.value in _WHILE_TRUE)
        self.while_true_depth += 1 if is_true else 0
        self._walk_body(node)
        self.while_true_depth -= 1 if is_true else 0

    def visit_With(self, node: ast.With) -> None:
        locky = any("lock" in ast.unparse(item.context_expr).lower()
                    for item in node.items)
        if locky and self.class_stack:
            self._class_has_lock.add(self.class_stack[-1])
        self.lock_with_depth += 1 if locky else 0
        self._walk_body(node)
        self.lock_with_depth -= 1 if locky else 0

    visit_AsyncWith = visit_With

    # -- statement-list checks (acquire/try-finally pairing) --------------

    def _walk_body(self, node) -> None:
        """Visit children, checking statement lists for acquire patterns."""
        for field in node._fields:
            value = getattr(node, field, None)
            if isinstance(value, list) and value and isinstance(
                    value[0], ast.stmt):
                self._check_stmt_list(value)
        ast.NodeVisitor.generic_visit(self, node)

    def generic_visit(self, node) -> None:  # route all nodes through bodies
        if any(isinstance(getattr(node, f, None), list)
               and getattr(node, f) and isinstance(getattr(node, f)[0],
                                                   ast.stmt)
               for f in node._fields):
            self._walk_body(node)
        else:
            ast.NodeVisitor.generic_visit(self, node)

    def visit_Module(self, node: ast.Module) -> None:
        self._walk_body(node)

    @staticmethod
    def _is_method_call(stmt, attr: str):
        if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == attr):
            return stmt.value
        return None

    def _check_stmt_list(self, body: list) -> None:
        for index, stmt in enumerate(body):
            call = self._is_method_call(stmt, "acquire")
            if call is None:
                continue
            owner = ast.unparse(call.func.value)
            nxt = body[index + 1] if index + 1 < len(body) else None
            released = False
            if isinstance(nxt, ast.Try) and nxt.finalbody:
                released = any(
                    self._is_method_call(s, "release") is not None
                    and ast.unparse(self._is_method_call(
                        s, "release").func.value) == owner
                    for s in nxt.finalbody)
            if not released:
                self.f.bare_acquires.append(Ref(
                    name=owner, line=stmt.lineno, col=stmt.col_offset))

    # -- attribute writes under / outside locks ---------------------------

    def _record_attr_write(self, target) -> None:
        if not (self.class_stack and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        key = (self.class_stack[-1], target.attr)
        slot = self._attr_writes.setdefault(key, {})
        ref = Ref(name=target.attr, line=target.lineno,
                  col=target.col_offset)
        if self.lock_with_depth > 0:
            slot.setdefault("guarded", ref)
        elif not self.in_init:
            slot.setdefault("unguarded", ref)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_attr_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_attr_write(node.target)
        self.generic_visit(node)

    # -- calls: the bulk of the facts -------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        last = (func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None)

        if last is not None:
            self._collect_fault_site(node, last)
            self._collect_instrument(node, func, last)
            self._collect_runtable(node, func, last)
            self._collect_determinism(node, func, last)
            if last == "recv" and isinstance(func, ast.Attribute) \
                    and self.while_true_depth > 0 and not node.args:
                self._pending_recvs.append((
                    Ref(name=ast.unparse(func.value), line=node.lineno,
                        col=node.col_offset),
                    self.func_stack[-1] if self.func_stack else None))
        self.generic_visit(node)

    def _collect_fault_site(self, node, last: str) -> None:
        if last in FAULT_SITE_CALLS and node.args:
            site = _const_str(node.args[0])
            if site is not None:
                self.f.fault_site_refs.append(Ref(
                    name=site, line=node.args[0].lineno,
                    col=node.args[0].col_offset))
        elif last == "FaultRule":
            site_node = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "site":
                    site_node = kw.value
            site = _const_str(site_node) if site_node is not None else None
            if site is not None:
                self.f.fault_site_refs.append(Ref(
                    name=site, line=site_node.lineno,
                    col=site_node.col_offset))

    _METRIC_KINDS = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}
    _TRACE_KINDS = {"event": "event", "span": "span",
                    "timed_span": "span", "timed": "span"}

    def _collect_instrument(self, node, func, last: str) -> None:
        kind = self._METRIC_KINDS.get(last)
        if kind is None:
            # ``self._event`` / ``_obs_event`` style aliases count too.
            core = last.lstrip("_")
            kind = self._TRACE_KINDS.get(core)
            if kind is None and (core.endswith("_event")
                                 or core.endswith("_span")):
                kind = "event" if core.endswith("_event") else "span"
            trace = True
        else:
            trace = False
            # ``np.histogram(...)`` and friends: a metric registration
            # must be a method call with a string-ish first argument —
            # the Name-func case is never a registry.
            if not isinstance(func, ast.Attribute):
                return
        if kind is None or not node.args:
            return
        arg = node.args[0]
        name = _const_str(arg)
        if name is not None:
            if SITE_RE.match(name):
                self.f.instruments.append(InstrumentFact(
                    name=name, kind=kind, line=arg.lineno,
                    col=arg.col_offset, prefix=False))
        else:
            prefix = _fstring_prefix(arg)
            if prefix and "." in prefix:
                self.f.instruments.append(InstrumentFact(
                    name=prefix, kind=kind, line=arg.lineno,
                    col=arg.col_offset, prefix=True))
        if trace:
            for kw in node.keywords:
                if kw.arg == "metric":
                    metric = _const_str(kw.value)
                    if metric is not None and SITE_RE.match(metric):
                        self.f.instruments.append(InstrumentFact(
                            name=metric, kind="histogram",
                            line=kw.value.lineno, col=kw.value.col_offset,
                            prefix=False))

    def _collect_runtable(self, node, func, last: str) -> None:
        if last in ("_rows", "_one"):
            for kw in node.keywords:
                if kw.arg is not None:
                    self.f.runtable_refs.append(Ref(
                        name=kw.arg, line=node.lineno, col=node.col_offset))
        elif (last == "append" and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "table"):
            for kw in node.keywords:
                if kw.arg is not None:
                    self.f.runtable_refs.append(Ref(
                        name=kw.arg, line=node.lineno, col=node.col_offset))

    def _collect_determinism(self, node, func, last: str) -> None:
        dotted = self._dotted(func)
        if dotted is None:
            return
        if dotted in WALL_CLOCK_CALLS:
            self.f.clock_calls.append(Ref(
                name=dotted, line=node.lineno, col=node.col_offset))
            return
        if dotted.startswith("numpy.random."):
            tail = dotted.rsplit(".", 1)[1]
            if tail == "default_rng" and (node.args or node.keywords):
                return  # explicitly seeded
            if tail[:1].isupper() and tail != "RandomState":
                return  # class references like numpy.random.Generator
            self.f.rng_calls.append(Ref(
                name=dotted, line=node.lineno, col=node.col_offset))
            return
        if dotted.startswith("random.") and self.aliases.get(
                "random") == "random":
            self.f.rng_calls.append(Ref(
                name=dotted, line=node.lineno, col=node.col_offset))
            return
        if (dotted == "RandomState" or dotted.endswith(".RandomState")) \
                and not node.args and not node.keywords:
            self.f.rng_calls.append(Ref(
                name=f"{last}()", line=node.lineno, col=node.col_offset))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``row["min_ms"]`` / ``noise_row["hw_bits"]``: a run-table
        # column reference whenever the subscripted name looks like a row.
        if (isinstance(node.value, ast.Name)
                and _ROW_NAME_RE.match(node.value.id)):
            column = _const_str(node.slice)
            if column is not None:
                self.f.runtable_refs.append(Ref(
                    name=column, line=node.lineno, col=node.col_offset))
        self.generic_visit(node)

    # -- literals ----------------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and SITE_RE.match(node.value):
            self.f.site_literals.add(node.value)

    # -- finalization ------------------------------------------------------

    def finalize(self) -> None:
        for ref, func_node in self._pending_recvs:
            if func_node is not None and _subtree_has_poll(func_node):
                continue
            self.f.blocking_recvs.append(ref)
        for (cls, attr), slot in sorted(self._attr_writes.items()):
            if cls not in self._class_has_lock:
                continue
            if "guarded" in slot and "unguarded" in slot:
                self.f.mixed_attrs.append(MixedAttrFact(
                    cls=cls, attr=attr, guarded=slot["guarded"],
                    unguarded=slot["unguarded"]))


def _subtree_has_poll(func_node) -> bool:
    """Whether the function also polls with a timeout somewhere — the
    marker of a recv loop that has a timeout path."""
    for sub in ast.walk(func_node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("poll", "wait")
                and (sub.args or sub.keywords)):
            return True
    return False


def _collect_suppressions(text: str):
    out: dict = {}
    file_wide: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        file_match = FILE_SUPPRESS_RE.search(line)
        if file_match is not None and line.lstrip().startswith("#"):
            file_wide.update(part.strip()
                             for part in file_match.group(1).split(",")
                             if part.strip())
            continue
        match = SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = frozenset(part.strip() for part in match.group(1).split(",")
                        if part.strip())
        comment_only = line.lstrip().startswith("#")
        out[lineno] = (ids, comment_only)
    return out, frozenset(file_wide)


def collect_module(path: str, text: str,
                   config: LintConfig) -> ModuleFacts:
    """Parse one file into its :class:`ModuleFacts`."""
    module = package = None
    if path.startswith("src/") and path.endswith(".py"):
        parts = Path(path).with_suffix("").parts[1:]  # drop "src"
        parts = [p for p in parts if p != "__init__"]
        module = ".".join(parts)
        if len(parts) >= 2 and parts[0] == "repro":
            package = parts[1]
    facts = ModuleFacts(path=path, module=module, package=package,
                        is_package=path.endswith("__init__.py"),
                        n_lines=text.count("\n") + 1)
    facts.suppressions, facts.file_suppressions = \
        _collect_suppressions(text)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        facts.parse_error = f"line {exc.lineno}: {exc.msg}"
        return facts
    collector = _Collector(facts)
    collector.visit(tree)
    collector.finalize()
    return facts


# ---------------------------------------------------------------------------
# Project assembly
# ---------------------------------------------------------------------------

def _iter_sources(root: Path, config: LintConfig):
    for scan_root in config.scan_roots:
        base = root / scan_root
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            yield rel, path.read_text(encoding="utf-8")


def build_facts(root=None, sources: dict | None = None,
                config: LintConfig | None = None) -> ProjectFacts:
    """Phase 1 entry point.

    ``sources`` (repo-relative path -> text) replaces the disk tree
    entirely when given — the unit-test path.  Catalogs are parsed from
    the tree (or ``sources``) unless overridden on ``config``.
    """
    config = config or LintConfig()
    if sources is None:
        if root is None:
            raise ValueError("build_facts needs a root or sources")
        root = Path(root)
        items = list(_iter_sources(root, config))
        root_label = root.as_posix()
        reader = lambda rel: ((root / rel).read_text(encoding="utf-8")
                              if (root / rel).exists() else None)
    else:
        items = [(path, text) for path, text in sorted(sources.items())
                 if path.endswith(".py")]
        root_label = "<memory>"
        reader = lambda rel: sources.get(rel)

    facts = ProjectFacts(root=root_label, config=config)
    for rel, text in items:
        facts.modules[rel] = collect_module(rel, text, config)

    if config.known_sites is not None:
        facts.known_sites = tuple(config.known_sites)
    else:
        faults_src = reader(config.faults_module)
        if faults_src is not None:
            facts.known_sites = parse_string_tuple(faults_src, "KNOWN_SITES")

    if config.run_table_columns is not None:
        facts.run_table_columns = tuple(config.run_table_columns)
    else:
        runtable_src = reader(config.runtable_module)
        if runtable_src is not None:
            facts.run_table_columns = parse_string_tuple(
                runtable_src, "ID_COLUMNS", "MEASUREMENT_COLUMNS")

    if config.instrument_catalog is not None:
        facts.instrument_catalog = config.instrument_catalog
    else:
        doc = reader(config.observability_doc)
        if doc is not None:
            facts.instrument_catalog = parse_instrument_catalog(doc)

    return facts
