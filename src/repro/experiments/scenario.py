"""Declarative scenario schema: a factor grid that expands into runs.

A :class:`Scenario` names one *kind* of measurement (forward, backward,
train_step, inference, variation, serving, chaos) and the factor levels to
sweep — engine x precision x workers x hardware realization x workload x
load point — plus repetitions and a seed.  :func:`expand` turns it into
a deterministic, ordered tuple of :class:`RunSpec` grid cells: the same
scenario always expands to the same run ids in the same order,
independent of measurement (so a changed seed changes measurement
columns in the run table, never the grid).

Validation is eager and loud: every factor value is checked at
construction against the domains the execution layer actually supports
(:data:`KINDS`, :data:`ENGINES`, :data:`PRECISIONS`, the workload
registry, the server's hardware/engine compatibility rules), raising
:class:`~repro.common.errors.ExperimentError` with the offending value
— a typo in a scenario definition must fail before any compute runs.

Execution lives in :mod:`repro.experiments.harness`; this module is
pure data and is what the property tests exercise.
"""

from __future__ import annotations

import dataclasses
import itertools

from ..common.benchcfg import (
    BENCH_SIZES,
    BENCH_SPIKE_DENSITY,
)
from ..common.errors import ExperimentError
from ..common.faults import KNOWN_SITES, FaultRule

__all__ = [
    "KINDS",
    "ENGINES",
    "PRECISIONS",
    "SERVING_KINDS",
    "HardwareSpec",
    "LoadSpec",
    "RunSpec",
    "Scenario",
    "TenantSpec",
    "expand",
]

KINDS = ("forward", "backward", "train_step", "inference", "variation",
         "serving", "chaos", "fleet")
ENGINES = ("fused", "step")
PRECISIONS = ("float64", "float32")

#: Kinds whose cells accept a worker-pool factor.
POOLED_KINDS = ("train_step", "inference", "variation")

#: Kinds that drive a ModelServer with an open-loop arrival process.
#: ``chaos`` is serving under an injected fault schedule — same factors,
#: same measurement columns, plus the robustness counters.  ``fleet``
#: drives a multi-replica :class:`~repro.serve.fleet.Fleet` with a
#: multi-tenant mix and additionally emits one per-tenant SLO row per
#: cell (``run_id`` suffixed ``+<tenant>``).
SERVING_KINDS = ("serving", "chaos", "fleet")


@dataclasses.dataclass(frozen=True)
class HardwareSpec:
    """One hardware-realization factor level (a Fig. 8 operating point)."""

    bits: int = 4
    variation: float = 0.1
    seed: int = 13
    shadow: bool = False

    def __post_init__(self):
        if self.bits < 2:
            raise ExperimentError(
                f"hardware bits must be >= 2, got {self.bits}")
        if self.variation < 0:
            raise ExperimentError(
                f"hardware variation must be >= 0, got {self.variation}")

    @property
    def label(self) -> str:
        prefix = "shadow" if self.shadow else "hw"
        return f"{prefix}{self.bits}b{round(self.variation * 100)}"


@dataclasses.dataclass(frozen=True)
class LoadSpec:
    """One offered-load factor level of a serving scenario."""

    id: str
    rate_rps: float
    requests: int

    def __post_init__(self):
        if not self.id:
            raise ExperimentError("a load point needs a non-empty id")
        if self.rate_rps <= 0:
            raise ExperimentError(
                f"load {self.id!r}: rate_rps must be > 0, "
                f"got {self.rate_rps}")
        if self.requests < 1:
            raise ExperimentError(
                f"load {self.id!r}: requests must be >= 1, "
                f"got {self.requests}")


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant of a ``fleet`` scenario: its traffic share and quota.

    ``share`` weights the per-request tenant draw; ``quota_rps`` /
    ``burst`` / ``max_pending`` become the tenant's
    :class:`~repro.serve.fleet.TenantQuota` (``None`` rate = unlimited);
    ``sessions`` is the tenant's concurrent stream count.
    """

    id: str
    share: float = 1.0
    quota_rps: float | None = None
    burst: int = 8
    max_pending: int | None = None
    sessions: int = 4

    def __post_init__(self):
        if not self.id or any(ch in self.id for ch in ",\n +"):
            raise ExperimentError(
                f"tenant id {self.id!r} must be a non-empty plain slug "
                "(no spaces, commas, or '+' — it becomes run-table cells "
                "and run-id suffixes)")
        if self.id.isdigit():
            raise ExperimentError(
                f"tenant id {self.id!r} must not be purely numeric "
                "(the run-table tenant column is a string cell)")
        if self.share <= 0:
            raise ExperimentError(
                f"tenant {self.id!r}: share must be > 0, got {self.share}")
        if self.quota_rps is not None and self.quota_rps <= 0:
            raise ExperimentError(
                f"tenant {self.id!r}: quota_rps must be > 0, "
                f"got {self.quota_rps}")
        if self.burst < 1:
            raise ExperimentError(
                f"tenant {self.id!r}: burst must be >= 1, got {self.burst}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ExperimentError(
                f"tenant {self.id!r}: max_pending must be >= 1, "
                f"got {self.max_pending}")
        if self.sessions < 1:
            raise ExperimentError(
                f"tenant {self.id!r}: sessions must be >= 1, "
                f"got {self.sessions}")


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One expanded grid cell: everything the harness needs to run it."""

    run_id: str
    scenario: "Scenario"
    kind: str
    engine: str
    precision: str
    workers: int
    hardware: HardwareSpec | None
    workload: str | None
    load: LoadSpec | None
    repetition: int
    seed: int

    @property
    def hardware_label(self) -> str:
        return "ideal" if self.hardware is None else self.hardware.label


def _known_workloads() -> tuple:
    from ..serve.workloads import WORKLOAD_CHANNELS

    return tuple(sorted(WORKLOAD_CHANNELS))


def _check_workload_name(name: str) -> None:
    known = _known_workloads()
    for part in name.split("+"):
        if not part or part not in known:
            raise ExperimentError(
                f"unknown workload {name!r} (component {part!r}); "
                f"known workloads: {list(known)} or 'a+b' mixes")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A declarative factor grid for one measurement kind.

    Tuple-valued fields are the swept factors; scalar fields are fixed
    knobs shared by every cell of the grid.  Defaults mirror the repo's
    standard bench point (``repro.common.benchcfg``); presets in
    :mod:`repro.experiments.harness` override what they sweep.
    """

    name: str
    kind: str
    # -- swept factors -------------------------------------------------------
    engines: tuple = ("fused",)
    precisions: tuple = ("float64",)
    workers: tuple = (0,)
    hardware: tuple = (None,)
    workloads: tuple = (None,)
    loads: tuple = (None,)
    repetitions: int = 1
    seed: int = 0
    # -- fixed knobs ---------------------------------------------------------
    rounds: int = 5            # timing repetitions per timed cell
    warmup: int = 2            # untimed warmup calls per timed cell
    sizes: tuple = BENCH_SIZES  # layer sizes; serving replaces sizes[0]
                                # with the workload's channel width
    samples: int = 64          # variation kind: evaluation-set size
    n_seeds: int = 2           # variation kind: device-noise seeds
    sessions: int = 16         # serving kind: concurrent client streams
    chunk_steps: int = 10      # serving kind: time steps per chunk
    max_batch: int = 16        # serving kind: coalescing cap
    max_wait_ms: float = 5.0   # serving kind: coalescing window
    queue_limit: int = 128     # serving kind: bounded-queue depth
    spike_density: float = BENCH_SPIKE_DENSITY
    # -- robustness knobs (serving kinds; required for kind="chaos") ---------
    faults: tuple = ()              # FaultRule levels (or dicts) to inject
    request_ttl_ms: float | None = None   # per-request deadline (TTL shed)
    session_ttl_s: float | None = None    # idle-session reaping horizon
    # -- fleet knobs (kind="fleet" only) -------------------------------------
    replicas: int = 2               # primary-generation replica count
    tenants: tuple = ()             # TenantSpec levels (default: one tenant)
    canary_weight: float = 0.0      # fraction of new sessions on the canary
    canary_hardware: HardwareSpec | None = None  # canary's realization

    def __post_init__(self):
        coerce = _normalize_factors(self)
        for field, value in coerce.items():
            object.__setattr__(self, field, value)
        self.validate()

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise ExperimentError("a scenario needs a non-empty name")
        if any(ch in self.name for ch in ",\n "):
            raise ExperimentError(
                f"scenario name {self.name!r} must be a plain slug "
                "(no spaces or commas — it becomes run-table cells)")
        if self.kind not in KINDS:
            raise ExperimentError(
                f"scenario {self.name!r}: unknown kind {self.kind!r}; "
                f"must be one of {list(KINDS)}")
        for factor, values in (("engines", self.engines),
                               ("precisions", self.precisions),
                               ("workers", self.workers),
                               ("hardware", self.hardware),
                               ("workloads", self.workloads),
                               ("loads", self.loads)):
            if not values:
                raise ExperimentError(
                    f"scenario {self.name!r}: factor {factor} is empty")
        for engine in self.engines:
            if engine not in ENGINES:
                raise ExperimentError(
                    f"scenario {self.name!r}: unknown engine {engine!r}; "
                    f"must be one of {list(ENGINES)}")
        if len(set(self.engines)) != len(self.engines):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate engine levels")
        for precision in self.precisions:
            if precision not in PRECISIONS:
                raise ExperimentError(
                    f"scenario {self.name!r}: unknown precision "
                    f"{precision!r}; must be one of {list(PRECISIONS)}")
        if len(set(self.precisions)) != len(self.precisions):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate precision levels")
        for count in self.workers:
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                raise ExperimentError(
                    f"scenario {self.name!r}: workers must be ints >= 0, "
                    f"got {count!r}")
        if len(set(self.workers)) != len(self.workers):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate worker counts")
        if any(w != 0 for w in self.workers) \
                and self.kind not in POOLED_KINDS:
            raise ExperimentError(
                f"scenario {self.name!r}: kind {self.kind!r} has no "
                f"worker-pool path; only {list(POOLED_KINDS)} do")
        labels = [spec.label for spec in self.hardware if spec is not None]
        if len(set(labels)) != len(labels):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate hardware levels")
        if self.hardware.count(None) > 1:
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate ideal hardware level")
        for spec in self.hardware:
            if spec is None:
                continue
            if spec.shadow and self.kind not in SERVING_KINDS:
                raise ExperimentError(
                    f"scenario {self.name!r}: shadow hardware is a serving "
                    f"mode; kind {self.kind!r} cannot use it")
        if self.kind in ("forward", "backward", "inference") \
                and any(spec is not None for spec in self.hardware):
            raise ExperimentError(
                f"scenario {self.name!r}: kind {self.kind!r} has no "
                "hardware factor; sweep hardware via train_step, "
                "variation, or serving scenarios")
        if self.kind in SERVING_KINDS \
                and any(spec is not None for spec in self.hardware) \
                and "step" in self.engines:
            raise ExperimentError(
                f"scenario {self.name!r}: hardware serving rides the fused "
                "engine's weight override; drop 'step' from engines or "
                "split the scenario")
        if self.kind == "variation" \
                and any(spec is None for spec in self.hardware):
            raise ExperimentError(
                f"scenario {self.name!r}: a variation sweep needs concrete "
                "HardwareSpec levels (bits/variation are what it measures)")
        if self.kind in SERVING_KINDS:
            if any(w is None for w in self.workloads):
                raise ExperimentError(
                    f"scenario {self.name!r}: serving workloads must be "
                    "named (the default is filled in at construction)")
            if any(load is None for load in self.loads):
                raise ExperimentError(
                    f"scenario {self.name!r}: a serving scenario needs "
                    "at least one concrete load point "
                    "({'id', 'rate_rps', 'requests'})")
        else:
            if any(w is not None for w in self.workloads):
                raise ExperimentError(
                    f"scenario {self.name!r}: workload is a serving "
                    f"factor; kind {self.kind!r} does not stream chunks")
            if any(load is not None for load in self.loads):
                raise ExperimentError(
                    f"scenario {self.name!r}: load points are a serving "
                    f"factor; kind {self.kind!r} has no arrival process")
        if self.kind == "chaos" and not self.faults:
            raise ExperimentError(
                f"scenario {self.name!r}: a chaos scenario needs at least "
                "one fault rule ({'site': ..., 'probability'|'nth': ...}); "
                "a faultless run is kind='serving'")
        if self.faults and self.kind != "chaos":
            raise ExperimentError(
                f"scenario {self.name!r}: fault rules belong to "
                f"kind='chaos', not {self.kind!r} — measurements under "
                "injected faults must be labelled as such in the run table")
        for rule in self.faults:
            if rule.site not in KNOWN_SITES:
                raise ExperimentError(
                    f"scenario {self.name!r}: unknown fault site "
                    f"{rule.site!r}; known sites: {list(KNOWN_SITES)}")
        if self.kind == "fleet":
            if self.replicas < 1:
                raise ExperimentError(
                    f"scenario {self.name!r}: a fleet needs >= 1 replica, "
                    f"got {self.replicas}")
            if not 0.0 <= self.canary_weight < 1.0:
                raise ExperimentError(
                    f"scenario {self.name!r}: canary_weight must be in "
                    f"[0, 1), got {self.canary_weight}")
            if self.canary_hardware is not None \
                    and self.canary_weight == 0.0:
                raise ExperimentError(
                    f"scenario {self.name!r}: canary_hardware without a "
                    "canary_weight would deploy a generation that gets "
                    "no traffic")
            if self.canary_hardware is not None \
                    and "step" in self.engines:
                raise ExperimentError(
                    f"scenario {self.name!r}: a hardware canary rides the "
                    "fused engine's weight override; drop 'step' from "
                    "engines or split the scenario")
            tenant_ids = [tenant.id for tenant in self.tenants]
            if len(set(tenant_ids)) != len(tenant_ids):
                raise ExperimentError(
                    f"scenario {self.name!r}: duplicate tenant ids "
                    f"{tenant_ids}")
        else:
            if self.tenants:
                raise ExperimentError(
                    f"scenario {self.name!r}: tenants are a fleet factor; "
                    f"kind {self.kind!r} has no admission control")
            if self.canary_weight or self.canary_hardware is not None:
                raise ExperimentError(
                    f"scenario {self.name!r}: canary knobs belong to "
                    f"kind='fleet', not {self.kind!r}")
        for knob, value in (("request_ttl_ms", self.request_ttl_ms),
                            ("session_ttl_s", self.session_ttl_s)):
            if value is None:
                continue
            if self.kind not in SERVING_KINDS:
                raise ExperimentError(
                    f"scenario {self.name!r}: {knob} is a serving knob; "
                    f"kind {self.kind!r} has no request lifecycle")
            if not value > 0:
                raise ExperimentError(
                    f"scenario {self.name!r}: {knob} must be > 0, "
                    f"got {value!r}")
        for workload in self.workloads:
            if workload is not None:
                _check_workload_name(workload)
        if len(set(self.workloads)) != len(self.workloads):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate workload levels")
        load_ids = [load.id for load in self.loads if load is not None]
        if len(set(load_ids)) != len(load_ids):
            raise ExperimentError(
                f"scenario {self.name!r}: duplicate load-point ids")
        if not isinstance(self.repetitions, int) or self.repetitions < 1:
            raise ExperimentError(
                f"scenario {self.name!r}: repetitions must be an int >= 1, "
                f"got {self.repetitions!r}")
        if self.rounds < 1:
            raise ExperimentError(
                f"scenario {self.name!r}: rounds must be >= 1, "
                f"got {self.rounds}")
        if len(self.sizes) < 2 or any(s < 1 for s in self.sizes):
            raise ExperimentError(
                f"scenario {self.name!r}: sizes needs >= 2 positive "
                f"layer widths, got {self.sizes}")

    @property
    def cells(self) -> int:
        """Grid cells per repetition."""
        return (len(self.engines) * len(self.precisions)
                * len(self.workers) * len(self.hardware)
                * len(self.workloads) * len(self.loads))


def _normalize_factors(scenario: Scenario) -> dict:
    """Coerce list/dict factor levels to the frozen canonical forms."""
    out = {}
    for field in ("engines", "precisions", "workers", "workloads", "sizes"):
        value = getattr(scenario, field)
        if isinstance(value, (str, int)):
            value = (value,)
        out[field] = tuple(value)
    hardware = getattr(scenario, "hardware")
    if hardware is None or isinstance(hardware, (dict, HardwareSpec)):
        hardware = (hardware,)
    out["hardware"] = tuple(
        HardwareSpec(**spec) if isinstance(spec, dict) else spec
        for spec in hardware)
    for spec in out["hardware"]:
        if spec is not None and not isinstance(spec, HardwareSpec):
            raise ExperimentError(
                f"scenario {scenario.name!r}: hardware levels must be "
                f"None, dicts, or HardwareSpec, got {type(spec).__name__}")
    loads = getattr(scenario, "loads")
    if loads is None or isinstance(loads, (dict, LoadSpec)):
        loads = (loads,)
    out["loads"] = tuple(
        LoadSpec(**load) if isinstance(load, dict) else load
        for load in loads)
    for load in out["loads"]:
        if load is not None and not isinstance(load, LoadSpec):
            raise ExperimentError(
                f"scenario {scenario.name!r}: load levels must be None, "
                f"dicts, or LoadSpec, got {type(load).__name__}")
    faults = getattr(scenario, "faults")
    if isinstance(faults, (dict, FaultRule)):
        faults = (faults,)
    try:
        out["faults"] = tuple(
            FaultRule(**rule) if isinstance(rule, dict) else rule
            for rule in faults)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"scenario {scenario.name!r}: invalid fault rule: {exc}")
    for rule in out["faults"]:
        if not isinstance(rule, FaultRule):
            raise ExperimentError(
                f"scenario {scenario.name!r}: fault levels must be dicts "
                f"or FaultRule, got {type(rule).__name__}")
    if scenario.kind in SERVING_KINDS and out["workloads"] == (None,):
        out["workloads"] = ("synthetic",)
    tenants = getattr(scenario, "tenants")
    if isinstance(tenants, (dict, TenantSpec)):
        tenants = (tenants,)
    out["tenants"] = tuple(
        TenantSpec(**tenant) if isinstance(tenant, dict) else tenant
        for tenant in tenants)
    for tenant in out["tenants"]:
        if not isinstance(tenant, TenantSpec):
            raise ExperimentError(
                f"scenario {scenario.name!r}: tenants must be dicts or "
                f"TenantSpec, got {type(tenant).__name__}")
    if scenario.kind == "fleet" and not out["tenants"]:
        out["tenants"] = (TenantSpec("t0"),)
    canary_hw = getattr(scenario, "canary_hardware")
    if isinstance(canary_hw, dict):
        canary_hw = HardwareSpec(**canary_hw)
    if canary_hw is not None and not isinstance(canary_hw, HardwareSpec):
        raise ExperimentError(
            f"scenario {scenario.name!r}: canary_hardware must be None, "
            f"a dict, or HardwareSpec, got {type(canary_hw).__name__}")
    out["canary_hardware"] = canary_hw
    return out


def expand(scenario: Scenario) -> tuple:
    """Deterministic grid expansion: one :class:`RunSpec` per cell x rep.

    The factor order is fixed (engine, precision, workers, hardware,
    workload, load, repetition) so the run table's row order — and every
    run id — is a pure function of the scenario definition.
    """
    specs = []
    for engine, precision, workers, hardware, workload, load in \
            itertools.product(scenario.engines, scenario.precisions,
                              scenario.workers, scenario.hardware,
                              scenario.workloads, scenario.loads):
        for repetition in range(scenario.repetitions):
            hw_label = "ideal" if hardware is None else hardware.label
            segments = [engine, precision, f"w{workers}", hw_label]
            if workload is not None:
                segments.append(workload)
            if load is not None:
                segments.append(load.id)
            segments.append(f"r{repetition}")
            specs.append(RunSpec(
                run_id=f"{scenario.name}/" + "-".join(segments),
                scenario=scenario, kind=scenario.kind, engine=engine,
                precision=precision, workers=workers, hardware=hardware,
                workload=workload, load=load, repetition=repetition,
                seed=scenario.seed,
            ))
    return tuple(specs)
