"""Mini-batch training loop tying the forward run, BPTT and optimizer together.

The :class:`Trainer` reproduces the paper's training setup (Table I):
AdamW, batch size 64, learning rate 1e-4 (classification) or 1e-3 (pattern
association).  It operates on in-memory arrays — every dataset in
:mod:`repro.data` materialises to ``(inputs, targets)`` pairs — and records
a per-epoch history of loss and task metrics.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..common.config import BaseConfig
from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .backprop import backward
from .network import SpikingNetwork
from .optim import clip_grad_norm, make_optimizer

__all__ = ["TrainerConfig", "Trainer", "EpochStats"]


@dataclasses.dataclass(frozen=True)
class TrainerConfig(BaseConfig):
    """Training hyper-parameters (paper Table I defaults).

    Attributes
    ----------
    epochs:
        Number of passes over the training set.
    batch_size:
        Mini-batch size (paper: 64).
    learning_rate:
        Step size (paper: 1e-4 classification, 1e-3 association).
    optimizer:
        ``"adamw"`` (paper), ``"adam"`` or ``"sgd"``.
    weight_decay:
        Decoupled decay for AdamW.
    grad_clip:
        Global-norm gradient clip; 0 disables.
    gradient_mode:
        ``"exact"`` or ``"truncated"`` BPTT (see :mod:`repro.core.backprop`).
    shuffle:
        Reshuffle the training set every epoch.
    engine:
        ``"fused"`` (default, :mod:`repro.core.engine`) or ``"step"`` —
        which simulation engine drives the forward and backward passes.
    precision:
        ``"float64"`` (default) or ``"float32"`` array precision for the
        forward run, recorded traces and gradients.  With
        ``engine="step"`` it applies to the forward pass only — the
        reference backward always computes gradients in float64.
    """

    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 1e-4
    optimizer: str = "adamw"
    weight_decay: float = 0.0
    grad_clip: float = 0.0
    gradient_mode: str = "exact"
    shuffle: bool = True
    engine: str = "fused"
    precision: str = "float64"

    def validate(self) -> None:
        self.require_positive("epochs")
        self.require_positive("batch_size")
        self.require_positive("learning_rate")
        self.require_non_negative("weight_decay")
        self.require_non_negative("grad_clip")
        self.require(self.gradient_mode in ("exact", "truncated"),
                     f"gradient_mode must be exact|truncated, "
                     f"got {self.gradient_mode!r}")
        self.require(self.optimizer in ("sgd", "adam", "adamw"),
                     f"optimizer must be sgd|adam|adamw, got {self.optimizer!r}")
        self.require(self.engine in ("fused", "step"),
                     f"engine must be fused|step, got {self.engine!r}")
        self.require(self.precision in ("float32", "float64"),
                     f"precision must be float32|float64, "
                     f"got {self.precision!r}")


@dataclasses.dataclass
class EpochStats:
    """Metrics for one epoch (train loss plus loss-specific metrics)."""

    epoch: int
    train_loss: float
    train_metrics: dict
    test_metrics: dict
    seconds: float

    def summary(self) -> str:
        parts = [f"epoch {self.epoch:3d}", f"loss {self.train_loss:.4f}"]
        parts += [f"train_{k} {v:.4f}" for k, v in self.train_metrics.items()]
        parts += [f"test_{k} {v:.4f}" for k, v in self.test_metrics.items()]
        parts.append(f"[{self.seconds:.1f}s]")
        return "  ".join(parts)


class Trainer:
    """Trains a :class:`~repro.core.network.SpikingNetwork` with BPTT.

    Parameters
    ----------
    network:
        The model to train (its weight arrays are updated in place).
    loss:
        A loss object exposing ``value_and_grad`` and ``metrics``
        (:class:`~repro.core.loss.CrossEntropyRateLoss` or
        :class:`~repro.core.loss.VanRossumLoss`).
    config:
        :class:`TrainerConfig`.
    rng:
        Seed / RandomState used only for epoch shuffling.
    """

    def __init__(self, network: SpikingNetwork, loss, config: TrainerConfig,
                 rng: RandomState | int | None = None):
        self.network = network
        self.loss = loss
        self.config = config
        self.rng = as_random_state(rng)
        extra = {}
        if config.optimizer == "adamw":
            extra["weight_decay"] = config.weight_decay
        self.optimizer = make_optimizer(
            config.optimizer, network.weights, lr=config.learning_rate, **extra
        )
        self.history: list[EpochStats] = []

    # -- single steps ------------------------------------------------------
    def train_batch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update on a batch; returns the batch loss."""
        cfg = self.config
        outputs, record = self.network.run(
            inputs, record=True, engine=cfg.engine, precision=cfg.precision
        )
        loss_value, grad_outputs = self.loss.value_and_grad(outputs, targets)
        backward_engine = "fused" if cfg.engine == "fused" else "reference"
        result = backward(self.network, record, grad_outputs,
                          mode=cfg.gradient_mode, engine=backward_engine,
                          precision=cfg.precision)
        grads = result.weight_grads
        if self.config.grad_clip > 0:
            clip_grad_norm(grads, self.config.grad_clip)
        self.optimizer.step(grads)
        return loss_value

    def train_epoch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One pass over the data; returns the mean batch loss."""
        n = inputs.shape[0]
        if targets.shape[0] != n:
            raise ShapeError(
                f"{n} inputs but {targets.shape[0]} targets"
            )
        order = np.arange(n)
        if self.config.shuffle:
            self.rng.shuffle(order)
        losses = []
        bs = self.config.batch_size
        for start in range(0, n, bs):
            index = order[start:start + bs]
            losses.append(self.train_batch(inputs[index], targets[index]))
        return float(np.mean(losses))

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, inputs: np.ndarray, targets: np.ndarray,
                 network: SpikingNetwork | None = None) -> dict:
        """Loss metrics on held-out data (no gradient, batched).

        ``network`` overrides the trained model — used for the paper's
        hard-reset swap evaluation.
        """
        model = network if network is not None else self.network
        outputs = run_in_batches(model, inputs, self.config.batch_size,
                                 engine=self.config.engine,
                                 precision=self.config.precision)
        return self.loss.metrics(outputs, targets)

    # -- full loop ----------------------------------------------------------
    def fit(self, train_inputs: np.ndarray, train_targets: np.ndarray,
            test_inputs: np.ndarray | None = None,
            test_targets: np.ndarray | None = None,
            verbose: bool = False) -> list[EpochStats]:
        """Run the configured number of epochs; returns per-epoch stats."""
        for epoch in range(1, self.config.epochs + 1):
            start = time.perf_counter()
            train_loss = self.train_epoch(train_inputs, train_targets)
            train_metrics = self.evaluate(train_inputs, train_targets)
            test_metrics = {}
            if test_inputs is not None and test_targets is not None:
                test_metrics = self.evaluate(test_inputs, test_targets)
            stats = EpochStats(
                epoch=epoch, train_loss=train_loss,
                train_metrics=train_metrics, test_metrics=test_metrics,
                seconds=time.perf_counter() - start,
            )
            self.history.append(stats)
            if verbose:
                print(stats.summary())
        return self.history


def run_in_batches(network: SpikingNetwork, inputs: np.ndarray,
                   batch_size: int, dtype=np.float64, engine: str = "fused",
                   precision: str | None = None) -> np.ndarray:
    """Forward-only run over a large array, batched to bound memory."""
    chunks = []
    for start in range(0, inputs.shape[0], batch_size):
        outputs, _ = network.run(inputs[start:start + batch_size], dtype=dtype,
                                 engine=engine, precision=precision)
        chunks.append(outputs)
    return np.concatenate(chunks, axis=0)
