"""Unit tests for repro.core.neurons (paper eqs. 1 and 6-12)."""

import numpy as np
import pytest

from repro.common.errors import StateError
from repro.core.filters import decay_from_tau
from repro.core.neurons import (
    AdaptiveLIFNeuron,
    HardResetLIFNeuron,
    NeuronParameters,
    make_neuron,
)


class TestNeuronParameters:
    def test_paper_defaults(self):
        params = NeuronParameters()
        assert params.tau == 4.0
        assert params.tau_r == 4.0
        assert params.v_th == 1.0

    def test_validation(self):
        with pytest.raises(Exception):
            NeuronParameters(tau=-1.0)
        with pytest.raises(Exception):
            NeuronParameters(v_th=0.0)
        with pytest.raises(Exception):
            NeuronParameters(theta=-0.5)


class TestAdaptiveLIFNeuron:
    def test_no_spike_below_threshold(self):
        neuron = AdaptiveLIFNeuron(3)
        neuron.reset_state(2)
        spikes, v = neuron.step(np.full((2, 3), 0.5))
        assert spikes.sum() == 0
        np.testing.assert_allclose(v, 0.5)

    def test_spikes_at_threshold(self):
        neuron = AdaptiveLIFNeuron(1)
        neuron.reset_state(1)
        spikes, _ = neuron.step(np.array([[1.0]]))  # v_th = 1.0, >= fires
        assert spikes[0, 0] == 1.0

    def test_threshold_rises_after_spike(self):
        """Eq. 8: h jumps by the previous output, threshold = Vth + theta*h."""
        neuron = AdaptiveLIFNeuron(1, NeuronParameters(theta=1.0, tau_r=4.0))
        neuron.reset_state(1)
        neuron.step(np.array([[2.0]]))          # fires
        assert neuron.adaptive_threshold()[0, 0] == pytest.approx(1.0)
        neuron.step(np.array([[0.0]]))          # h picks up O[t-1] = 1
        beta = decay_from_tau(4.0)
        assert neuron.adaptive_threshold()[0, 0] == pytest.approx(1.0 + 1.0)
        neuron.step(np.array([[0.0]]))
        assert neuron.adaptive_threshold()[0, 0] == pytest.approx(
            1.0 + beta)

    def test_threshold_decays_exponentially(self):
        neuron = AdaptiveLIFNeuron(1)
        neuron.reset_state(1)
        neuron.step(np.array([[5.0]]))          # fire once
        thresholds = []
        for _ in range(6):
            neuron.step(np.array([[0.0]]))
            thresholds.append(neuron.adaptive_threshold()[0, 0] - 1.0)
        ratios = np.array(thresholds[1:]) / np.array(thresholds[:-1])
        np.testing.assert_allclose(ratios, decay_from_tau(4.0), rtol=1e-9)

    def test_refractory_suppression(self):
        """A PSP that would fire alone is suppressed right after a spike."""
        neuron = AdaptiveLIFNeuron(1, NeuronParameters(theta=1.0))
        neuron.reset_state(1)
        s1, _ = neuron.step(np.array([[1.2]]))
        assert s1[0, 0] == 1.0
        s2, _ = neuron.step(np.array([[1.2]]))  # threshold now 2.0 > 1.2
        assert s2[0, 0] == 0.0

    def test_adaptive_threshold_form_equivalence(self):
        """Eq. 6+10 (v = g - theta*h vs Vth) == eq. 12 (g vs Vth + theta*h)."""
        rng = np.random.default_rng(0)
        neuron = AdaptiveLIFNeuron(4, NeuronParameters(theta=0.7))
        neuron.reset_state(2)
        for _ in range(30):
            g = rng.random((2, 4)) * 2.0
            threshold_before = neuron.adaptive_threshold_preview()
            spikes, v = neuron.step(g)
            expected = (g >= threshold_before).astype(float)
            np.testing.assert_array_equal(spikes, expected)

    def test_step_before_reset_raises(self):
        neuron = AdaptiveLIFNeuron(2)
        with pytest.raises(StateError):
            neuron.step(np.zeros((1, 2)))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AdaptiveLIFNeuron(0)

    def test_state_isolated_between_batches(self):
        neuron = AdaptiveLIFNeuron(1)
        neuron.reset_state(2)
        g = np.array([[2.0], [0.0]])
        spikes, _ = neuron.step(g)
        np.testing.assert_array_equal(spikes, [[1.0], [0.0]])
        # Only sample 0's threshold rises.
        neuron.step(np.zeros((2, 1)))
        thresholds = neuron.adaptive_threshold()
        assert thresholds[0, 0] > thresholds[1, 0]


class TestHardResetLIFNeuron:
    def test_integrates_like_filter_without_reset(self):
        """With inputs too weak to fire, v equals the exponential filter of
        the drive — identical to the adaptive model's PSP (Section II)."""
        rng = np.random.default_rng(1)
        neuron = HardResetLIFNeuron(3, NeuronParameters(v_th=1e9))
        neuron.reset_state(1)
        alpha = neuron.alpha
        carry = np.zeros((1, 3))
        for _ in range(25):
            j = rng.random((1, 3)) * 0.1
            _, v = neuron.step(j)
            carry = alpha * carry + j
            np.testing.assert_allclose(v, carry, rtol=1e-12)

    def test_reset_wipes_state(self):
        neuron = HardResetLIFNeuron(1)
        neuron.reset_state(1)
        spikes, v = neuron.step(np.array([[1.5]]))
        assert spikes[0, 0] == 1.0
        # After reset the membrane restarts from zero.
        _, v2 = neuron.step(np.array([[0.0]]))
        assert v2[0, 0] == pytest.approx(0.0)

    def test_subthreshold_not_reset(self):
        neuron = HardResetLIFNeuron(1)
        neuron.reset_state(1)
        _, v1 = neuron.step(np.array([[0.4]]))
        _, v2 = neuron.step(np.array([[0.0]]))
        assert v2[0, 0] == pytest.approx(0.4 * neuron.alpha)

    def test_euler_discretization_gains(self):
        impulse = HardResetLIFNeuron(1, discretization="impulse")
        euler = HardResetLIFNeuron(1, discretization="euler")
        assert impulse.input_gain == 1.0
        assert euler.input_gain == pytest.approx(0.25)     # 1/tau
        assert euler.alpha == pytest.approx(0.75)          # 1 - 1/tau
        assert impulse.alpha == pytest.approx(np.exp(-0.25))

    def test_unknown_discretization(self):
        with pytest.raises(ValueError):
            HardResetLIFNeuron(1, discretization="rk4")

    def test_step_before_reset_raises(self):
        neuron = HardResetLIFNeuron(2)
        with pytest.raises(StateError):
            neuron.step(np.zeros((1, 2)))


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_neuron("adaptive", 3), AdaptiveLIFNeuron)
        hr = make_neuron("hard_reset", 3)
        assert isinstance(hr, HardResetLIFNeuron)
        assert hr.discretization == "impulse"
        he = make_neuron("hard_reset_euler", 3)
        assert he.discretization == "euler"

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown neuron kind"):
            make_neuron("izhikevich", 3)
