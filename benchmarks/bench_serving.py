"""Serving benchmark: open-loop arrivals through the micro-batching server.

Since the scenario harness landed (:mod:`repro.experiments.harness`,
``docs/experiments.md``) this file is a *thin scenario definition*: the
grid below (4 server configs x 3 offered loads on the repo's standard
700-128-128-20 shape) is expanded and executed by the harness, and the
reported dicts are views of the resulting run-table rows
(:func:`repro.experiments.benchjson.serving_row_to_report`).  The
canonical definition of the grid is
:func:`repro.experiments.harness.serving_scenarios`; this module keeps
the historical entry points alive:

* run standalone (prints a table)::

      PYTHONPATH=src python benchmarks/bench_serving.py

* ``make bench-serving`` / ``tools/bench_to_json.py --serving`` write
  ``BENCH_serving.json``;
* named explicitly to pytest (``pytest benchmarks/bench_serving.py``) it
  runs reduced smoke scenarios only; the tier-1 hardware/shadow serving
  coverage lives in ``tests/unit/test_serve.py``.

Configurations cover the ideal model (both precisions) *and* the
hardware realization side by side: ``hardware_float64`` serves a
4-bit/10%-variation crossbar mapping through the engine's weight
override, and ``shadow_float64`` runs ideal + hardware on every stream
while recording the mean per-chunk output divergence.  The three load
points per configuration bracket the measured 1-core capacity: ``light``
(latency floor), ``heavy`` (throughput plateau), ``overload``
(backpressure — the bounded queue rejects instead of growing latency
without bound).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.benchcfg import BENCH_SIZES, BENCH_SPIKE_DENSITY
from repro.experiments import benchjson
from repro.experiments.harness import SERVING_LOADS, run_scenario
from repro.experiments.scenario import HardwareSpec, Scenario

#: Offered-load scenarios (chunks/s) — the canonical harness load points.
SCENARIOS = [
    {"id": load.id, "rate_rps": load.rate_rps, "requests": load.requests}
    for load in SERVING_LOADS
]

#: Hardware realization served by the hardware-backed configurations
#: (Fig. 8's 4-bit column at 10 % process variation).
HW_PROFILE = {"bits": 4, "variation": 0.1, "seed": 7}

#: Server configurations measured per scenario: the ideal model at both
#: precisions, the crossbar realization, and the shadow (ideal + hardware
#: per stream) canary.
CONFIGS = [
    {"id": "fused_float64", "engine": "fused", "precision": "float64"},
    {"id": "fused_float32", "engine": "fused", "precision": "float32"},
    {"id": "hardware_float64", "engine": "fused", "precision": "float64",
     "hardware": HW_PROFILE},
    {"id": "shadow_float64", "engine": "fused", "precision": "float64",
     "hardware": HW_PROFILE, "shadow": True},
]

SESSIONS = 32
CHUNK_STEPS = 10
MAX_BATCH = 16
MAX_WAIT_MS = 5.0
QUEUE_LIMIT = 128


def serve_scenario(config: dict, scenario: dict, sessions: int = SESSIONS,
                   chunk_steps: int = CHUNK_STEPS) -> dict:
    """One (server config, load point) measurement; returns the report dict.

    Builds a single-cell harness scenario and converts its run-table row
    back to the historical ``ServingReport.to_dict`` shape.
    """
    hardware = (None,)
    if config.get("hardware"):
        hardware = (HardwareSpec(**config["hardware"],
                                 shadow=bool(config.get("shadow"))),)
    cell = Scenario(
        name=f"serving-{config['id']}", kind="serving",
        engines=(config["engine"],), precisions=(config["precision"],),
        hardware=hardware, workloads=("synthetic",),
        loads=(dict(scenario),), sessions=sessions,
        chunk_steps=chunk_steps, max_batch=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS, queue_limit=QUEUE_LIMIT,
        spike_density=BENCH_SPIKE_DENSITY, seed=7,
    )
    table = run_scenario(cell)
    return benchjson.serving_row_to_report(table.rows[0])


def run_serving_bench(scenarios=None, configs=None) -> dict:
    """The full grid; shape of the returned dict matches
    ``BENCH_serving.json``'s ``serving`` section."""
    out: dict = {}
    for config in configs or CONFIGS:
        rows = {}
        for scenario in scenarios or SCENARIOS:
            rows[scenario["id"]] = serve_scenario(config, scenario)
            print(f"{config['id']:>14} {scenario['id']:>9}: "
                  f"{_render_row(rows[scenario['id']])}")
        out[config["id"]] = rows
    return out


def _render_row(row: dict) -> str:
    lat = row["latency_ms"]

    def ms(key: str) -> str:
        # None when nothing completed (total rejection) — keep printable.
        return "    n/a   " if lat[key] is None else f"{lat[key]:7.2f} ms"

    shadow = (f"  div {row['divergence']:.4f}"
              if row.get("divergence") is not None else "")
    return (f"offered {row['offered_rps']:7.0f} rps  served "
            f"{row['throughput_rps']:7.0f} rps  rejected {row['rejected']:4d}  "
            f"batch {row['mean_batch']:5.2f}  p50 {ms('p50')}  "
            f"p95 {ms('p95')}  p99 {ms('p99')}{shadow}")


def serving_meta() -> dict:
    meta = benchjson.serving_workload_meta()
    assert meta["sizes"] == list(BENCH_SIZES)
    return meta


# -- pytest entry point (reduced scale) -------------------------------------

def test_serving_smoke():
    """Structure check on a reduced load point (fast; run explicitly or
    via the tier-1-adjacent bench invocation)."""
    row = serve_scenario(CONFIGS[0],
                         {"id": "smoke", "rate_rps": 500.0, "requests": 40},
                         sessions=8)
    assert row["completed"] + row["rejected"] == 40
    assert row["throughput_rps"] > 0
    for key in ("p50", "p95", "p99"):
        assert row["latency_ms"][key] >= 0


def test_hardware_serving_smoke():
    """The hardware and shadow configs run, and shadow reports a
    divergence number."""
    configs = {config["id"]: config for config in CONFIGS}
    hw = serve_scenario(configs["hardware_float64"],
                        {"id": "smoke", "rate_rps": 500.0, "requests": 25},
                        sessions=8)
    assert hw["completed"] + hw["rejected"] == 25
    assert hw["divergence"] is None          # nothing to diff against
    shadow = serve_scenario(configs["shadow_float64"],
                            {"id": "smoke", "rate_rps": 500.0,
                             "requests": 25}, sessions=8)
    assert shadow["completed"] + shadow["rejected"] == 25
    assert 0.0 <= shadow["divergence"] <= 1.0


def main() -> int:
    print(__doc__.splitlines()[0])
    run_serving_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
