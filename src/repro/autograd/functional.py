"""Composite differentiable functions: stable softmax cross-entropy and the
van Rossum loss, built for the autograd engine.

These mirror :mod:`repro.core.loss` so that the whole training computation
(forward + loss) can be replicated in the AD engine for gradient
cross-checks.
"""

from __future__ import annotations

import numpy as np

from .ops import _make, add, scale, square, sub, tsum
from .tensor import Tensor, as_tensor

__all__ = ["cross_entropy_with_logits", "van_rossum_loss"]


def cross_entropy_with_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy (single fused primitive for stability).

    Parameters
    ----------
    logits:
        (batch, classes) tensor.
    labels:
        Integer labels, shape (batch,).
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels)
    batch = logits.data.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    eps = 1e-12
    loss_value = -np.mean(np.log(probs[np.arange(batch), labels] + eps))

    def backward(grad):
        if logits.requires_grad:
            one_hot = np.zeros_like(probs)
            one_hot[np.arange(batch), labels] = 1.0
            logits._accumulate(grad * (probs - one_hot) / batch)

    return _make(loss_value, (logits,), backward)


def van_rossum_loss(outputs: list[Tensor], targets: np.ndarray,
                    tau_m: float = 4.0, tau_s: float = 1.0) -> Tensor:
    """Paper eqs. 15-16 built entirely from differentiable ops.

    Parameters
    ----------
    outputs:
        Per-step output tensors, each of shape (batch, trains); length T.
    targets:
        Constant target spikes, shape (batch, T, trains).
    """
    steps = len(outputs)
    if steps == 0:
        raise ValueError("outputs must contain at least one step")
    targets = np.asarray(targets, dtype=np.float64)
    batch = targets.shape[0]
    alpha_m = float(np.exp(-1.0 / tau_m))
    alpha_s = float(np.exp(-1.0 / tau_s))

    trace_m: Tensor | None = None
    trace_s: Tensor | None = None
    total: Tensor | None = None
    for t in range(steps):
        diff = sub(outputs[t], targets[:, t, :])
        trace_m = diff if trace_m is None else add(scale(trace_m, alpha_m), diff)
        trace_s = diff if trace_s is None else add(scale(trace_s, alpha_s), diff)
        err = sub(trace_m, trace_s)
        term = tsum(square(err))
        total = term if total is None else add(total, term)
    return scale(total, 1.0 / (2.0 * steps * batch))
