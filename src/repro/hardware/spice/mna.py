"""Modified nodal analysis (MNA) and backward-Euler transient simulation.

The circuit is assembled into the standard bordered MNA system

.. math::

    \\begin{bmatrix} G & B \\\\ B^T & 0 \\end{bmatrix}
    \\begin{bmatrix} v \\\\ i \\end{bmatrix}
    =
    \\begin{bmatrix} z_I \\\\ z_V \\end{bmatrix}

where ``G`` stamps resistor conductances and capacitor companion
conductances (backward Euler: ``C/dt`` in parallel with a history current
source ``C/dt * v_prev``), ``B`` stamps voltage-source incidence, and the
right-hand side carries source values and capacitor history.

Because every active element is a :class:`~repro.hardware.spice.netlist.BehavioralSource`
(an ideal voltage source whose *value* is updated explicitly between
steps), the system matrix is constant over the whole transient: it is
LU-factorised once and only the right-hand side changes per step — a few
microseconds per step even for hundreds of nodes.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ...common.errors import CircuitError
from .netlist import (
    GROUND,
    BehavioralSource,
    Capacitor,
    Component,
    Resistor,
    VoltageSource,
)

__all__ = ["Circuit", "TransientResult"]


class TransientResult:
    """Waveforms from a transient run.

    Attributes
    ----------
    time:
        (n_steps,) time points (seconds).
    voltages:
        node name -> (n_steps,) voltage trace.
    source_currents:
        voltage-source name -> (n_steps,) current through the source
        (positive current flows out of the + terminal through the circuit).
    """

    def __init__(self, time: np.ndarray, voltages: dict[str, np.ndarray],
                 source_currents: dict[str, np.ndarray]):
        self.time = time
        self.voltages = voltages
        self.source_currents = source_currents

    def voltage(self, node: str) -> np.ndarray:
        if node == GROUND:
            return np.zeros_like(self.time)
        try:
            return self.voltages[node]
        except KeyError:
            raise CircuitError(f"no recorded voltage for node {node!r}") from None

    def current(self, source_name: str) -> np.ndarray:
        try:
            return self.source_currents[source_name]
        except KeyError:
            raise CircuitError(
                f"no recorded current for source {source_name!r}"
            ) from None

    @property
    def dt(self) -> float:
        if len(self.time) < 2:
            return 0.0
        return float(self.time[1] - self.time[0])


class Circuit:
    """A netlist plus MNA assembly and transient solving."""

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.components: list[Component] = []
        self._names: set[str] = set()

    # -- construction -----------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Add a component (names must be unique); returns it for chaining."""
        if component.name in self._names:
            raise CircuitError(f"duplicate component name {component.name!r}")
        self._names.add(component.name)
        self.components.append(component)
        return component

    def nodes(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: list[str] = []
        for component in self.components:
            for node in component.nodes:
                if node != GROUND and node not in seen:
                    seen.append(node)
        return seen

    # -- assembly ----------------------------------------------------------------
    def _partition(self):
        resistors = [c for c in self.components if isinstance(c, Resistor)]
        capacitors = [c for c in self.components if isinstance(c, Capacitor)]
        v_sources = [c for c in self.components if isinstance(c, VoltageSource)]
        b_sources = [c for c in self.components
                     if isinstance(c, BehavioralSource)]
        known = set(resistors) | set(capacitors) | set(v_sources) | set(b_sources)
        unknown = [c for c in self.components if c not in known]
        if unknown:
            raise CircuitError(
                f"unsupported components: {[c.name for c in unknown]}"
            )
        return resistors, capacitors, v_sources, b_sources

    def transient(self, t_stop: float, dt: float,
                  record_nodes: Sequence[str] | None = None) -> TransientResult:
        """Run a fixed-step backward-Euler transient from t=0 to ``t_stop``.

        Parameters
        ----------
        t_stop, dt:
            Simulation span and step (seconds).  ``dt`` must resolve the
            fastest behavioral-source lag (checked: ``dt <= tau``).
        record_nodes:
            Node subset to record (default: all).

        Returns
        -------
        TransientResult
        """
        if dt <= 0 or t_stop <= 0:
            raise CircuitError("t_stop and dt must be positive")
        resistors, capacitors, v_sources, b_sources = self._partition()
        for source in b_sources:
            if dt > source.tau:
                raise CircuitError(
                    f"dt={dt:g}s does not resolve {source.name!r} "
                    f"(tau={source.tau:g}s); reduce dt"
                )

        node_names = self.nodes()
        index = {name: i for i, name in enumerate(node_names)}
        n_nodes = len(node_names)
        all_sources = list(v_sources) + list(b_sources)
        n_src = len(all_sources)
        dim = n_nodes + n_src

        def node_id(name: str) -> int | None:
            return None if name == GROUND else index[name]

        # Constant system matrix: conductances + companion + source borders.
        matrix = np.zeros((dim, dim))
        for r in resistors:
            a, b = node_id(r.nodes[0]), node_id(r.nodes[1])
            g = r.conductance
            if a is not None:
                matrix[a, a] += g
            if b is not None:
                matrix[b, b] += g
            if a is not None and b is not None:
                matrix[a, b] -= g
                matrix[b, a] -= g
        companion = []
        for c in capacitors:
            a, b = node_id(c.nodes[0]), node_id(c.nodes[1])
            g = c.capacitance / dt
            companion.append((c, a, b, g))
            if a is not None:
                matrix[a, a] += g
            if b is not None:
                matrix[b, b] += g
            if a is not None and b is not None:
                matrix[a, b] -= g
                matrix[b, a] -= g
        for k, source in enumerate(all_sources):
            row = n_nodes + k
            if isinstance(source, VoltageSource):
                plus, minus = node_id(source.nodes[0]), node_id(source.nodes[1])
            else:
                plus, minus = node_id(source.output), None
            if plus is not None:
                matrix[plus, row] += 1.0
                matrix[row, plus] += 1.0
            if minus is not None:
                matrix[minus, row] -= 1.0
                matrix[row, minus] -= 1.0

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                lu = lu_factor(matrix)
        except Exception as exc:  # singular matrix -> floating nodes
            raise CircuitError(
                f"MNA matrix is singular — check for floating nodes "
                f"({exc})"
            ) from exc
        diag = np.abs(np.diag(lu[0]))
        if diag.size and diag.min() < 1e-300:
            raise CircuitError(
                "MNA matrix is singular — check for floating nodes "
                "(zero pivot in LU factorisation)"
            )

        steps = int(round(t_stop / dt))
        time = np.arange(steps) * dt
        recorded = list(record_nodes) if record_nodes else node_names
        for node in recorded:
            if node != GROUND and node not in index:
                raise CircuitError(f"unknown node {node!r}")
        volt_traces = {node: np.zeros(steps) for node in recorded
                       if node != GROUND}
        current_traces = {s.name: np.zeros(steps) for s in all_sources}

        # Initial conditions: capacitor pre-charges and behavioral-source
        # starting levels (so a source's *inputs* see consistent voltages
        # at the first step instead of spurious zeros).
        v_prev = np.zeros(n_nodes)
        for c, a, b, g in companion:
            if c.initial_voltage != 0.0:
                if a is not None:
                    v_prev[a] = c.initial_voltage
                if b is not None:
                    v_prev[b] = -c.initial_voltage
        for source in b_sources:
            source.reset()
            output_node = node_id(source.output)
            if output_node is not None:
                v_prev[output_node] = source.initial

        rhs = np.zeros(dim)
        for step in range(steps):
            t = time[step]
            rhs[:] = 0.0
            for c, a, b, g in companion:
                va = v_prev[a] if a is not None else 0.0
                vb = v_prev[b] if b is not None else 0.0
                hist = g * (va - vb)
                if a is not None:
                    rhs[a] += hist
                if b is not None:
                    rhs[b] -= hist
            for k, source in enumerate(all_sources):
                row = n_nodes + k
                if isinstance(source, VoltageSource):
                    rhs[row] = source.value(t)
                else:
                    inputs = [
                        v_prev[index[n]] if n != GROUND else 0.0
                        for n in source.inputs
                    ]
                    rhs[row] = source.advance(inputs, dt)

            solution = lu_solve(lu, rhs)
            v_prev = solution[:n_nodes]
            for node in volt_traces:
                volt_traces[node][step] = v_prev[index[node]]
            for k, source in enumerate(all_sources):
                current_traces[source.name][step] = solution[n_nodes + k]

        return TransientResult(time, volt_traces, current_traces)

    def __repr__(self) -> str:
        return f"Circuit({self.title!r}, {len(self.components)} components)"
