"""Scenario-harness guarantees: determinism, pool reuse, JSON round-trip.

The contracts pinned here (see ``docs/experiments.md``):

* **Determinism** — the same scenario list with the same seeds produces a
  byte-identical run table (row-for-row) once wall-clock is removed via
  the injectable timer; a changed seed changes only measurement columns,
  never the grid (run ids, order, factor columns).
* **Pool reuse** — grid cells that need the same (network, workers) pool
  share one instance through :class:`repro.runtime.pool.PoolCache`.
* **Round-trip** — ``table -> CSV -> table`` is lossless, and the
  ``BENCH_*.json`` views regenerated from the re-read table match the
  in-memory conversion (the ``tools/bench_to_json.py --from-table``
  contract), with the key structure the docs and CI consume.
"""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.common.errors import ExperimentError
from repro.common.runtable import RUN_TABLE_COLUMNS, RunTable
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.experiments import benchjson
from repro.experiments.harness import (
    PRESETS,
    modeled_energy_j,
    run_scenario,
    run_scenarios,
    smoke_scenarios,
)
from repro.experiments.scenario import (
    HardwareSpec,
    LoadSpec,
    Scenario,
    expand,
)
from repro.runtime import PoolCache

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="serving scenarios stream through the CSR fused path")


class FakeTimer:
    """Deterministic monotonic clock: every call advances 1 ms."""

    def __init__(self, dt=1e-3):
        self.now = 0.0
        self.dt = dt

    def __call__(self):
        self.now += self.dt
        return self.now


def tiny_scenarios(seed=0):
    """A fast grid touching timed, accuracy, and serving kinds."""
    return [
        Scenario(name="t-forward", kind="forward",
                 engines=("fused", "step"), sizes=(32, 16, 8), rounds=2,
                 warmup=0, seed=seed),
        Scenario(name="t-variation", kind="variation",
                 hardware=(HardwareSpec(bits=3, variation=0.2, seed=5),),
                 sizes=(24, 16, 8), samples=8, n_seeds=2, rounds=1,
                 warmup=0, seed=seed),
        Scenario(name="t-serving", kind="serving",
                 loads=(LoadSpec("smoke", 400.0, 12),),
                 sizes=(24, 16, 8), sessions=3, chunk_steps=4,
                 repetitions=2, seed=seed),
    ]


class TestRunTable:
    def test_unknown_column_rejected(self):
        table = RunTable()
        with pytest.raises(ExperimentError, match="unknown run-table"):
            table.append(run_id="x", cpu_ms=1.0)

    def test_duplicate_run_id_rejected(self):
        table = RunTable()
        table.append(run_id="x", kind="forward")
        with pytest.raises(ExperimentError, match="duplicate run_id"):
            table.append(run_id="x", kind="forward")

    def test_csv_round_trip_preserves_types(self):
        table = RunTable()
        table.append(run_id="a", kind="serving", workers=2,
                     rate_rps=300.0, duration_s=0.123456789,
                     divergence=None, workload="speech+synthetic")
        text = table.render_csv()
        back = RunTable.from_csv_text(text)
        assert back.rows == table.rows
        assert back.render_csv() == text

    def test_header_mismatch_rejected(self):
        with pytest.raises(ExperimentError, match="header"):
            RunTable.from_csv_text("a,b,c\n1,2,3\n")

    def test_numpy_scalar_cells_render_as_builtin_floats(self):
        # np.float64 is a float subclass whose repr under numpy 2.x is
        # 'np.float64(...)'; a cell like that would read back as a string
        # and corrupt every JSON regenerated from the table.
        table = RunTable()
        table.append(run_id="a", kind="serving",
                     duration_s=np.float64(0.08208),
                     throughput_rps=np.float64(4678.371),
                     steps_per_s=np.float64(46783.7))
        text = table.render_csv()
        assert "np.float64" not in text
        back = RunTable.from_csv_text(text)
        assert back.rows[0]["duration_s"] == pytest.approx(0.08208)
        assert isinstance(back.rows[0]["throughput_rps"], float)

    def test_corrupt_numeric_cell_fails_loudly(self):
        table = RunTable()
        table.append(run_id="a", kind="serving", duration_s=0.5)
        text = table.render_csv().replace("0.5", "np.float64(0.5)")
        with pytest.raises(ExperimentError, match="numeric"):
            RunTable.from_csv_text(text)


@needs_scipy
class TestDeterminism:
    def test_same_seed_identical_table(self):
        a = run_scenarios(tiny_scenarios(seed=3), timer=FakeTimer())
        b = run_scenarios(tiny_scenarios(seed=3), timer=FakeTimer())
        assert a.render_csv() == b.render_csv()

    def test_changed_seed_changes_only_measurements(self):
        a = run_scenarios(tiny_scenarios(seed=3), timer=FakeTimer())
        b = run_scenarios(tiny_scenarios(seed=4), timer=FakeTimer())
        id_columns = RUN_TABLE_COLUMNS[:RUN_TABLE_COLUMNS.index("seed")]
        for row_a, row_b in zip(a.rows, b.rows):
            for column in id_columns:
                assert row_a[column] == row_b[column], column
        assert [r["run_id"] for r in a.rows] \
            == [r["run_id"] for r in b.rows]
        # the seed column and at least one measurement moved
        assert [r["seed"] for r in a.rows] != [r["seed"] for r in b.rows]
        serving_a = [r for r in a.rows if r["kind"] == "serving"]
        serving_b = [r for r in b.rows if r["kind"] == "serving"]
        assert any(ra["duration_s"] != rb["duration_s"]
                   or ra["ticks"] != rb["ticks"]
                   for ra, rb in zip(serving_a, serving_b))

    def test_expansion_independent_of_execution(self):
        scenario = tiny_scenarios(seed=3)[2]
        before = [spec.run_id for spec in expand(scenario)]
        run_scenario(scenario, timer=FakeTimer())
        assert [spec.run_id for spec in expand(scenario)] == before


class TestServingDensity:
    """``Scenario.spike_density`` reaches the streamed synthetic chunks
    (it used to be silently dropped once a workload object was built)."""

    def test_context_builds_synthetic_at_scenario_density(self):
        from repro.experiments.harness import _HarnessContext

        with _HarnessContext() as ctx:
            dense = ctx.workload("synthetic", 64, seed=0, density=0.25)
            assert dense.density == 0.25
            sparse = ctx.workload("synthetic", 64, seed=0, density=0.03)
            assert sparse is not dense
            assert sparse.density == 0.03

    def test_density_reaches_synthetic_mix_components(self):
        from repro.experiments.harness import _HarnessContext

        with _HarnessContext() as ctx:
            mix = ctx.workload("speech+synthetic", 700, seed=0,
                               density=0.25)
            densities = [w.density for w in mix.workloads
                         if w.name == "synthetic"]
            assert densities == [0.25]

    def test_sensor_workloads_share_cache_across_densities(self):
        from repro.experiments.harness import _HarnessContext

        with _HarnessContext() as ctx:
            assert ctx.workload("dvs", 64, seed=0, density=0.25) \
                is ctx.workload("dvs", 64, seed=0, density=0.03)


class TestPoolCache:
    def test_same_key_same_pool(self):
        net = SpikingNetwork((12, 8, 4), rng=0)
        with PoolCache() as cache:
            first = cache.get(net, 1)
            assert cache.get(net, 1) is first
            assert len(cache) == 1
            other = cache.get(net, 2)
            assert other is not first
            assert len(cache) == 2

    def test_distinct_networks_never_share(self):
        a = SpikingNetwork((12, 8, 4), rng=0)
        b = SpikingNetwork((12, 8, 4), rng=0)
        with PoolCache() as cache:
            assert cache.get(a, 1) is not cache.get(b, 1)

    def test_serial_request_rejected(self):
        with PoolCache() as cache:
            with pytest.raises(ValueError, match="workers >= 1"):
                cache.get(SpikingNetwork((12, 8, 4), rng=0), 0)


class TestEnergyModel:
    def test_scales_with_steps_and_neurons(self):
        one = modeled_energy_j(1, 1)
        assert one == pytest.approx(1.11e-11, rel=1e-6)
        assert modeled_energy_j(300, 1) == pytest.approx(3.33e-9, rel=1e-2)
        assert modeled_energy_j(10, 7) == pytest.approx(70 * one)


@needs_scipy
class TestBenchJsonRoundTrip:
    """table -> CSV -> table -> BENCH_*.json matches in-memory conversion
    and the key structure the docs/CI consume."""

    @pytest.fixture(scope="class")
    def table(self):
        scenarios = [
            Scenario(name="forward", kind="forward", engines=("fused",),
                     precisions=("float64", "float32"), sizes=(32, 16, 8),
                     rounds=2, warmup=0),
            Scenario(name="forward-step", kind="forward", engines=("step",),
                     sizes=(32, 16, 8), rounds=2, warmup=0),
            Scenario(name="backward", kind="backward",
                     engines=("fused", "step"), sizes=(32, 16, 8),
                     rounds=2, warmup=0),
            Scenario(name="train-step", kind="train_step",
                     sizes=(32, 16, 8), rounds=2, warmup=0),
            Scenario(name="train-step-aware", kind="train_step",
                     hardware=(HardwareSpec(4, 0.0, 13),
                               HardwareSpec(4, 0.1, 13)),
                     sizes=(32, 16, 8), rounds=2, warmup=0),
            Scenario(name="inference", kind="inference", sizes=(32, 16, 8),
                     rounds=2, warmup=0),
            Scenario(name="variation-sweep", kind="variation",
                     hardware=(HardwareSpec(4, 0.2, 13),),
                     sizes=(24, 16, 8), samples=8, n_seeds=2, rounds=1,
                     warmup=0),
            Scenario(name="serving", kind="serving", engines=("fused",),
                     precisions=("float64", "float32"),
                     loads=(LoadSpec("light", 400.0, 10),),
                     sizes=(24, 16, 8), sessions=3, chunk_steps=4),
            Scenario(name="serving-hardware", kind="serving",
                     hardware=(HardwareSpec(4, 0.1, 7),),
                     loads=(LoadSpec("light", 400.0, 10),),
                     sizes=(24, 16, 8), sessions=3, chunk_steps=4),
            Scenario(name="serving-shadow", kind="serving",
                     hardware=(HardwareSpec(4, 0.1, 7, shadow=True),),
                     loads=(LoadSpec("light", 400.0, 10),),
                     sizes=(24, 16, 8), sessions=3, chunk_steps=4),
        ]
        return run_scenarios(scenarios, timer=FakeTimer())

    def test_csv_round_trip_lossless(self, table):
        back = RunTable.from_csv_text(table.render_csv())
        assert back.rows == table.rows

    def test_throughput_schema(self, table):
        meta = {"pinned": True}
        report = benchjson.throughput_report(table, meta=meta)
        reread = benchjson.throughput_report(
            RunTable.from_csv_text(table.render_csv()), meta=meta)
        assert report == reread
        assert set(report) == {"meta", "forward", "backward", "train_step",
                               "inference", "variation_sweep",
                               "train_step_hardware_aware"}
        assert set(report["forward"]) == {"fused", "fused_float32",
                                          "step_reference"}
        assert set(report["backward"]) == {"fused", "reference"}
        assert "serial" in report["train_step"]
        assert "serial" in report["inference"]
        assert "serial" in report["variation_sweep"]
        aware = report["train_step_hardware_aware"]
        assert set(aware) == {"ideal", "hardware_aware",
                              "hardware_aware_noise",
                              "overhead_hardware_aware",
                              "overhead_hardware_aware_noise"}
        for row in (report["forward"]["fused"], aware["ideal"]):
            assert set(row) == {"min_ms", "mean_ms", "max_ms", "rounds"}

    def test_serving_schema(self, table):
        meta = {"pinned": True}
        report = benchjson.serving_report(table, meta=meta)
        reread = benchjson.serving_report(
            RunTable.from_csv_text(table.render_csv()), meta=meta)
        assert report == reread
        assert set(report["serving"]) == {"fused_float64", "fused_float32",
                                          "hardware_float64",
                                          "shadow_float64"}
        row = report["serving"]["fused_float64"]["light"]
        assert set(row) == {"offered_rps", "duration_s", "submitted",
                            "completed", "rejected", "ticks",
                            "throughput_rps", "mean_batch", "steps_per_s",
                            "latency_ms", "divergence",
                            "faults_injected", "requests_retried",
                            "requests_expired", "requests_failed",
                            "recovery_p99_ms", "availability",
                            "queue_wait_p95_ms", "tick_compute_p95_ms",
                            "pool_stats"}
        assert row["availability"] == 1.0          # a clean serving run
        assert row["queue_wait_p95_ms"] is not None
        assert row["tick_compute_p95_ms"] is not None
        assert set(row["latency_ms"]) == {"p50", "p95", "p99", "mean",
                                          "max"}
        assert report["serving"]["shadow_float64"]["light"]["divergence"] \
            is not None

    def test_aware_schema(self, table):
        meta = {"pinned": True}
        report = benchjson.aware_report(table, meta=meta)
        reread = benchjson.aware_report(
            RunTable.from_csv_text(table.render_csv()), meta=meta)
        assert report == reread
        assert report["meta"]["operating_point"] == {"bits": 4,
                                                     "variation": 0.1}
        assert set(report["train_step"]) == {
            "ideal", "hardware_aware", "hardware_aware_noise",
            "overhead_hardware_aware", "overhead_hardware_aware_noise"}

    def test_missing_rows_fail_loudly(self):
        table = RunTable()
        table.append(run_id="only", kind="forward", engine="fused",
                     precision="float64", repetition=0, min_ms=1.0,
                     mean_ms=1.0, max_ms=1.0, rounds=1)
        with pytest.raises(ExperimentError, match="no row"):
            benchjson.throughput_report(table, meta={})
        with pytest.raises(ExperimentError, match="serving"):
            benchjson.serving_report(table, meta={})

    def test_from_table_cli(self, table, tmp_path, monkeypatch):
        """``tools/bench_to_json.py --from-table`` regenerates all three
        JSON artifacts from a table on disk."""
        table_path = tmp_path / "run_table.csv"
        table.write_csv(table_path)
        tools = pathlib.Path(__file__).resolve().parents[2] / "tools"
        spec = importlib.util.spec_from_file_location(
            "bench_to_json_under_test", tools / "bench_to_json.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.chdir(tmp_path)
        assert module.main(["--from-table", str(table_path)]) == 0
        for name in ("BENCH_throughput.json", "BENCH_serving.json",
                     "BENCH_aware.json"):
            report = json.loads((tmp_path / name).read_text())
            assert "meta" in report


class TestPresets:
    def test_presets_expand_deterministically(self):
        for name, factory in PRESETS.items():
            ids = [spec.run_id for scenario in factory()
                   for spec in expand(scenario)]
            assert ids == [spec.run_id for scenario in factory()
                           for spec in expand(scenario)], name
            assert len(ids) == len(set(ids)), f"{name}: duplicate run ids"

    def test_smoke_grid_is_the_ci_acceptance_grid(self):
        """2 engines x 2 workloads x 1 rep, incl. a non-SHD workload."""
        serving = [spec for scenario in smoke_scenarios()
                   for spec in expand(scenario)
                   if spec.kind == "serving"]
        engines = {spec.engine for spec in serving}
        workloads = {spec.workload for spec in serving}
        assert engines == {"fused", "step"}
        assert "dvs" in workloads          # a non-SHD sensor workload
        assert any("+" in w for w in workloads)  # and a mixed stream
        assert all(spec.repetition == 0 for spec in serving)


class TestChaosValidation:
    BASE = dict(loads=(LoadSpec("l", 400.0, 8),), sizes=(24, 16, 8),
                sessions=2, chunk_steps=4)
    RULE = {"site": "serve.tick.raise", "nth": (1,)}

    def test_chaos_needs_faults(self):
        with pytest.raises(ExperimentError, match="at least one fault"):
            Scenario(name="c", kind="chaos", **self.BASE)

    def test_faults_belong_to_chaos(self):
        with pytest.raises(ExperimentError, match="kind='chaos'"):
            Scenario(name="c", kind="serving", faults=(self.RULE,),
                     **self.BASE)

    def test_unknown_site_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault site"):
            Scenario(name="c", kind="chaos",
                     faults=({"site": "no.such.site", "nth": (1,)},),
                     **self.BASE)

    def test_malformed_rule_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario(name="c", kind="chaos",
                     faults=({"site": "serve.tick.raise"},),  # never fires
                     **self.BASE)

    def test_ttl_knobs_are_serving_only_and_positive(self):
        with pytest.raises(ExperimentError, match="serving knob"):
            Scenario(name="c", kind="forward", request_ttl_ms=10.0,
                     sizes=(24, 16, 8))
        with pytest.raises(ExperimentError, match="> 0"):
            Scenario(name="c", kind="chaos", faults=(self.RULE,),
                     request_ttl_ms=0.0, **self.BASE)

    def test_chaos_expands_like_serving(self):
        scenario = Scenario(name="c", kind="chaos", faults=(self.RULE,),
                            repetitions=2, **self.BASE)
        specs = expand(scenario)
        assert len(specs) == 2
        assert all(spec.kind == "chaos" for spec in specs)
        assert len({spec.run_id for spec in specs}) == 2


@needs_scipy
class TestChaosRuns:
    @staticmethod
    def scenario(seed=3):
        return Scenario(
            name="t-chaos", kind="chaos",
            loads=(LoadSpec("smoke", 400.0, 16),),
            sizes=(24, 16, 8), sessions=3, chunk_steps=4,
            request_ttl_ms=250.0, session_ttl_s=60.0,
            faults=({"site": "serve.request.raise", "probability": 0.05},
                    {"site": "serve.tick.raise", "nth": (2,)}),
            seed=seed)

    @pytest.fixture(scope="class")
    def table(self):
        return run_scenarios([self.scenario()], timer=FakeTimer())

    def test_every_request_is_accounted_for(self, table):
        (row,) = table.by_kind("chaos")
        resolved = (row["completed"] + row["requests_failed"]
                    + row["requests_expired"] + row["rejected"])
        assert resolved == row["requests"] == 16
        # The nth=(2,) tick fault is guaranteed to fire (and the whole
        # tick to retry); failures only come from injected request
        # poisoning, never an unrecovered server error.
        assert row["faults_injected"] >= 1
        assert row["requests_retried"] >= 1
        assert row["requests_failed"] <= row["faults_injected"]
        denominator = (row["completed"] + row["requests_failed"]
                       + row["requests_expired"])
        assert row["availability"] == round(
            row["completed"] / denominator, 6)

    def test_chaos_rows_round_trip_through_csv(self, table):
        back = RunTable.from_csv_text(table.render_csv())
        assert back.rows == table.rows

    def test_chaos_section_of_serving_report(self, table):
        report = benchjson.serving_report(table, meta={"pinned": True})
        assert report["serving"] == {}     # chaos-only table
        row = report["chaos"]["t-chaos"]["smoke"]
        for key in ("availability", "faults_injected", "requests_retried",
                    "requests_expired", "requests_failed",
                    "recovery_p99_ms"):
            assert key in row
        assert row["submitted"] == 16

    def test_same_seed_reproduces_the_fault_schedule(self, table):
        again = run_scenarios([self.scenario()], timer=FakeTimer())
        assert again.rows == table.rows
