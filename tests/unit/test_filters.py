"""Unit tests for repro.core.filters (paper eq. 5 and the eq. 15 kernel)."""

import numpy as np
import pytest

from repro.common.errors import ShapeError, StateError
from repro.core.filters import (
    DoubleExponentialKernel,
    ExponentialFilter,
    decay_from_tau,
    exponential_filter,
    exponential_filter_adjoint,
    tau_from_decay,
)


class TestDecayConversion:
    def test_paper_tau_value(self):
        # Table I: tau = 4 -> alpha = e^(-1/4)
        assert decay_from_tau(4.0) == pytest.approx(np.exp(-0.25))

    def test_roundtrip(self):
        for tau in (0.5, 1.0, 4.0, 40.0):
            assert tau_from_decay(decay_from_tau(tau)) == pytest.approx(tau)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            decay_from_tau(0.0)
        with pytest.raises(ValueError):
            decay_from_tau(-1.0)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            tau_from_decay(1.0)
        with pytest.raises(ValueError):
            tau_from_decay(0.0)


class TestExponentialFilter:
    def test_impulse_response_is_geometric(self):
        f = ExponentialFilter(tau=4.0, shape=(1,))
        response = []
        response.append(f.step(np.array([1.0]))[0])
        for _ in range(9):
            response.append(f.step(np.array([0.0]))[0])
        alpha = decay_from_tau(4.0)
        expected = alpha ** np.arange(10)
        np.testing.assert_allclose(response, expected, rtol=1e-12)

    def test_impulse_response_method_matches_step(self):
        f = ExponentialFilter(tau=3.0)
        ir = f.impulse_response(8)
        assert ir[0] == 1.0
        np.testing.assert_allclose(ir[1:] / ir[:-1], f.alpha)

    def test_step_before_reset_raises(self):
        f = ExponentialFilter(tau=4.0)
        with pytest.raises(StateError):
            f.step(np.zeros(3))

    def test_step_shape_mismatch_raises(self):
        f = ExponentialFilter(tau=4.0, shape=(2, 3))
        with pytest.raises(ShapeError):
            f.step(np.zeros((2, 4)))

    def test_dc_gain(self):
        # Constant input 1 converges to 1/(1 - alpha).
        f = ExponentialFilter(tau=4.0, shape=(1,))
        value = None
        for _ in range(300):
            value = f.step(np.array([1.0]))
        assert value[0] == pytest.approx(1.0 / (1.0 - f.alpha), rel=1e-9)

    def test_run_matches_manual_scan(self):
        rng = np.random.default_rng(0)
        xs = rng.random((20, 4))
        f = ExponentialFilter(tau=2.5)
        out = f.run(xs)
        carry = np.zeros(4)
        for t in range(20):
            carry = f.alpha * carry + xs[t]
            np.testing.assert_allclose(out[t], carry)

    def test_run_time_axis(self):
        rng = np.random.default_rng(1)
        xs = rng.random((3, 15, 2))
        f = ExponentialFilter(tau=4.0)
        out = f.run(xs, time_axis=1)
        ref = np.stack([f.run(xs[b]) for b in range(3)], axis=0)
        np.testing.assert_allclose(out, ref)


class TestFilterFunctions:
    def test_initial_state_honoured(self):
        xs = np.zeros((5, 1))
        out = exponential_filter(xs, alpha=0.5, initial=np.array([8.0]))
        np.testing.assert_allclose(out[:, 0], 8.0 * 0.5 ** np.arange(1, 6))

    def test_adjoint_is_transpose(self):
        """<F x, y> == <x, F^T y> for random x, y (the adjoint identity)."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30,))
        y = rng.normal(size=(30,))
        alpha = 0.7788
        fx = exponential_filter(x, alpha)
        fty = exponential_filter_adjoint(y, alpha)
        assert np.dot(fx, y) == pytest.approx(np.dot(x, fty), rel=1e-12)


class TestDoubleExponentialKernel:
    def test_kernel_zero_at_origin(self):
        kernel = DoubleExponentialKernel(tau_m=4.0, tau_s=1.0)
        assert kernel.kernel(10)[0] == 0.0

    def test_kernel_positive_after_origin(self):
        kernel = DoubleExponentialKernel(tau_m=4.0, tau_s=1.0)
        values = kernel.kernel(30)
        assert np.all(values[1:] > 0.0)

    def test_requires_tau_m_gt_tau_s(self):
        with pytest.raises(ValueError):
            DoubleExponentialKernel(tau_m=1.0, tau_s=4.0)
        with pytest.raises(ValueError):
            DoubleExponentialKernel(tau_m=2.0, tau_s=2.0)

    def test_convolve_matches_direct_convolution(self):
        rng = np.random.default_rng(3)
        spikes = (rng.random(40) < 0.2).astype(float)
        kernel = DoubleExponentialKernel(tau_m=4.0, tau_s=1.0)
        fast = kernel.convolve(spikes[:, None])[:, 0]
        direct = np.convolve(spikes, kernel.kernel(40))[:40]
        np.testing.assert_allclose(fast, direct, atol=1e-12)

    def test_adjoint_identity(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(25, 2))
        y = rng.normal(size=(25, 2))
        kernel = DoubleExponentialKernel()
        lhs = np.sum(kernel.convolve(x) * y)
        rhs = np.sum(x * kernel.adjoint_convolve(y))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_peak_time_is_analytic(self):
        # Peak of e^{-t/tau_m} - e^{-t/tau_s} is at
        # t* = ln(tau_m/tau_s) * tau_m*tau_s/(tau_m - tau_s).
        kernel = DoubleExponentialKernel(tau_m=4.0, tau_s=1.0)
        values = kernel.kernel(40)
        t_star = np.log(4.0) * (4.0 * 1.0) / (4.0 - 1.0)
        assert abs(int(np.argmax(values)) - t_star) <= 1.0
