"""The codesigned hardware model: RRAM devices, quantization, crossbars,
the behavioral analog circuit simulator, the paper's Fig. 6 neuron
circuit, and power/energy/area estimation."""

from .crossbar import DifferentialCrossbar
from .devices import (
    RRAMCellArray,
    RRAMDeviceConfig,
    program_conductances,
    quantize_conductances,
)
from .mapped_network import (
    HardwareMappedNetwork,
    HardwareProfile,
    HardwareStreamState,
    accuracy_under_variation,
    seed_accuracy,
)
from .neuron_circuit import (
    NeuronCircuitConfig,
    NeuronCircuitResult,
    build_neuron_circuit,
    simulate_neuron,
)
from .power import (
    PAPER_POWER_REPORT,
    AreaModelConfig,
    PowerModelConfig,
    PowerReport,
    estimate_area,
    estimate_power,
)
from .quantization import (
    QuantizationConfig,
    conductances_to_weights,
    fake_quantize,
    quantize_weights,
    resolve_weight_scale,
    sample_programmed_weights,
    weights_to_conductances,
)
from .tiling import TiledCrossbar

__all__ = [
    "DifferentialCrossbar",
    "RRAMCellArray",
    "RRAMDeviceConfig",
    "program_conductances",
    "quantize_conductances",
    "HardwareMappedNetwork",
    "HardwareProfile",
    "HardwareStreamState",
    "accuracy_under_variation",
    "seed_accuracy",
    "NeuronCircuitConfig",
    "NeuronCircuitResult",
    "build_neuron_circuit",
    "simulate_neuron",
    "PAPER_POWER_REPORT",
    "AreaModelConfig",
    "PowerModelConfig",
    "PowerReport",
    "estimate_area",
    "estimate_power",
    "QuantizationConfig",
    "conductances_to_weights",
    "fake_quantize",
    "quantize_weights",
    "resolve_weight_scale",
    "sample_programmed_weights",
    "weights_to_conductances",
]
