"""Experiment registry and CLI: one runner per table/figure of the paper."""

from .paperconfig import PAPER_CONFIG, PaperConfig, table1
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, run_experiment
from .runners import ExperimentResult, resolve_profile

__all__ = [
    "PAPER_CONFIG",
    "PaperConfig",
    "table1",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "ExperimentResult",
    "resolve_profile",
]
