"""Fleet tests: routing transparency, admission control, canary rollout.

The fleet promises pinned here (``repro/serve/fleet.py``,
``docs/fleet.md``):

* **Transparency** — a 1-replica fleet is bitwise-identical to a bare
  :class:`~repro.serve.ModelServer` for every engine x precision, and
  on an N-replica fleet every session's outputs are bitwise-identical
  to streaming alone: the router may coalesce sessions however it
  likes, but never perturbs a computed spike.
* **Isolation** — admission control is per-tenant: a hot tenant burning
  through its token bucket or in-flight bound is rejected without the
  cold tenant seeing a single rejection, and each tenant's books
  conserve (offered == admitted + rejected + voided).
* **Rollout** — a canary generation takes its weighted share of new
  sessions, is judged on its rolling divergence / error window, and
  both promotion and rollback drain the losing generation
  generation-fenced (no session migrates mid-stream).
* **Degradation** — a dead replica fails its sessions cleanly
  (:class:`~repro.common.errors.StateError` on submit, reconnect lands
  on a survivor), and the fleet-wide accounting tripwire holds through
  kills, misroutes, and rollouts.
"""

import numpy as np
import pytest

from repro.common import faults
from repro.common.errors import CapacityError, StateError
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.serve import Fleet, ModelRegistry, ModelServer, TenantQuota

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="the fused engine requires scipy's CSR product")

SIZES = (24, 20, 12)


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_chunk(steps=6, seed=0, density=0.15):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


def make_mapped(net, variation=0.2, seed=3):
    from repro.hardware import HardwareMappedNetwork, RRAMDeviceConfig

    device = RRAMDeviceConfig(levels=16, variation=variation)
    return HardwareMappedNetwork(net, device, rng=seed)


def make_fleet(net=None, **kwargs):
    kwargs.setdefault("engine", "step")
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_ms", 0.0)
    kwargs.setdefault("queue_limit", 32)
    return Fleet(net if net is not None else make_net(), **kwargs)


def solo_outputs(chunks, engine="step", precision="float64"):
    """The reference: one session streamed alone on a bare server."""
    server = ModelServer(make_net(), engine=engine, precision=precision,
                         max_batch=4, max_wait_ms=0.0)
    try:
        sid = server.open_session(now=0.0)
        outputs = []
        for i, chunk in enumerate(chunks):
            ticket = server.submit(sid, chunk, now=float(i))
            server.flush(now=float(i))
            outputs.append(ticket.outputs.copy())
        return outputs
    finally:
        server.close()


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


class TestSingleReplicaEquivalence:
    @pytest.mark.parametrize("engine", [
        "step", pytest.param("fused", marks=needs_scipy)])
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_one_replica_fleet_is_bitwise_a_bare_server(
            self, engine, precision):
        chunks = [make_chunk(seed=i) for i in range(4)]
        expected = solo_outputs(chunks, engine=engine, precision=precision)
        fleet = make_fleet(replicas=1, engine=engine, precision=precision)
        try:
            sid = fleet.open_session("t0", now=0.0)
            for i, chunk in enumerate(chunks):
                ticket = fleet.submit(sid, chunk, now=float(i))
                fleet.flush(now=float(i))
                assert ticket.ok
                np.testing.assert_array_equal(ticket.outputs, expected[i])
            fleet.check_invariants()
        finally:
            fleet.close()


class TestRoutedSessionTransparency:
    def test_every_session_matches_its_solo_stream(self):
        # Nine sessions interleaved over three replicas; each session's
        # chunk sequence is seeded by its index, so each has its own
        # solo-stream reference.
        chunkseqs = [[make_chunk(seed=10 * s + i) for i in range(3)]
                     for s in range(9)]
        fleet = make_fleet(replicas=3, max_batch=8)
        try:
            sids = [fleet.open_session(f"tenant{s % 2}", now=0.0)
                    for s in range(9)]
            tickets = [[] for _ in sids]
            now = 0.0
            for i in range(3):           # round-robin the interleaving
                for s, sid in enumerate(sids):
                    tickets[s].append(
                        fleet.submit(sid, chunkseqs[s][i], now=now))
                    now += 0.001
                fleet.flush(now=now)
            fleet.check_invariants()
            for s in range(9):
                expected = solo_outputs(chunkseqs[s])
                for i in range(3):
                    assert tickets[s][i].ok
                    np.testing.assert_array_equal(
                        tickets[s][i].outputs, expected[i])
        finally:
            fleet.close()

    def test_sessions_spread_least_loaded(self):
        fleet = make_fleet(replicas=3)
        try:
            sids = [fleet.open_session("t0", now=0.0) for _ in range(6)]
            assert sorted(fleet.route(sid) for sid in sids) \
                == [0, 0, 1, 1, 2, 2]
        finally:
            fleet.close()


class TestTenantAdmission:
    def test_rate_quota_rejects_hot_and_spares_cold(self):
        fleet = make_fleet(replicas=2)
        fleet.set_quota("hot", TenantQuota(rate_rps=10.0, burst=2))
        try:
            hot = fleet.open_session("hot", now=0.0)
            cold = fleet.open_session("cold", now=0.0)
            fleet.submit(hot, make_chunk(seed=0), now=0.0)
            fleet.submit(hot, make_chunk(seed=1), now=0.0)
            with pytest.raises(CapacityError, match="token-bucket"):
                fleet.submit(hot, make_chunk(seed=2), now=0.0)
            # The cold tenant is untouched by the hot tenant's bucket.
            fleet.submit(cold, make_chunk(seed=3), now=0.0)
            fleet.flush(now=0.0)
            books = fleet.stats["per_tenant"]
            assert books["hot"]["rejected_quota"] == 1
            assert books["cold"]["rejected_quota"] == 0
            assert books["cold"]["rejected_queue"] == 0
            fleet.check_invariants()
        finally:
            fleet.close()

    def test_token_bucket_refills_over_time(self):
        fleet = make_fleet(replicas=1)
        fleet.set_quota("t", TenantQuota(rate_rps=10.0, burst=1))
        try:
            sid = fleet.open_session("t", now=0.0)
            fleet.submit(sid, make_chunk(seed=0), now=0.0)
            with pytest.raises(CapacityError):
                fleet.submit(sid, make_chunk(seed=1), now=0.01)
            fleet.flush(now=0.01)
            # 0.1 s at 10 rps refills exactly the one token.
            ticket = fleet.submit(sid, make_chunk(seed=1), now=0.11)
            fleet.flush(now=0.11)
            assert ticket.ok
        finally:
            fleet.close()

    def test_in_flight_bound_rejects_until_served(self):
        fleet = make_fleet(replicas=1, max_wait_ms=10_000.0)
        fleet.set_quota("t", TenantQuota(max_pending=2))
        try:
            sid = fleet.open_session("t", now=0.0)
            fleet.submit(sid, make_chunk(seed=0), now=0.0)
            fleet.submit(sid, make_chunk(seed=1), now=0.0)
            with pytest.raises(CapacityError, match="in-flight"):
                fleet.submit(sid, make_chunk(seed=2), now=0.0)
            fleet.flush(now=0.0)   # serves the pending chunks
            ticket = fleet.submit(sid, make_chunk(seed=2), now=0.0)
            fleet.flush(now=0.0)
            assert ticket.ok
        finally:
            fleet.close()

    def test_books_conserve_per_tenant(self):
        fleet = make_fleet(replicas=2)
        fleet.set_quota("hot", TenantQuota(rate_rps=50.0, burst=3))
        try:
            hot = fleet.open_session("hot", now=0.0)
            cold = fleet.open_session("cold", now=0.0)
            for i in range(8):
                for sid in (hot, cold):
                    try:
                        fleet.submit(sid, make_chunk(seed=i), now=0.0)
                    except CapacityError:
                        pass
            fleet.flush(now=0.0)
            for name, books in fleet.stats["per_tenant"].items():
                assert books["offered"] == (
                    books["admitted"] + books["rejected_quota"]
                    + books["rejected_queue"] + books["voided"]), name
            fleet.check_invariants()
        finally:
            fleet.close()


class TestCanaryRollout:
    def _fill_window(self, fleet, sessions, chunks_each=2, now=0.0):
        for burst in range(chunks_each):
            for j, sid in enumerate(sessions):
                fleet.submit(sid, make_chunk(seed=100 * burst + j),
                             now=now)
                now += 0.001
            fleet.flush(now=now)
        return now

    def test_weighted_split_and_promotion_from_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("snn", make_net(seed=1), meta={"rev": 1})
        fleet = Fleet.from_registry(registry, "snn", replicas=2,
                                    engine="step", max_wait_ms=0.0,
                                    seed=11)
        try:
            v2 = registry.save("snn", make_net(seed=2), meta={"rev": 2})
            gen = fleet.deploy_canary(registry=registry, version=v2,
                                      weight=0.5)
            assert fleet.canary_generation == gen
            sessions = [fleet.open_session("t0", now=0.0)
                        for _ in range(40)]
            status = fleet.canary_status()
            assert status["label"] == v2
            share = status["sessions"] / len(sessions)
            assert abs(share - 0.5) <= 0.2    # seeded draw, pinned
            now = self._fill_window(fleet, sessions)
            assert fleet.canary_status()["observed"] >= 32
            assert fleet.evaluate_canary() == "promote"
            old = fleet.primary_generation
            assert fleet.promote_canary() == gen
            assert fleet.primary_generation == gen
            assert fleet.canary_generation is None
            assert fleet.canary_weight == 0.0
            # New sessions all land on the promoted generation.
            generation_of = {r["replica"]: r["generation"]
                             for r in fleet.stats["per_replica"]}
            fresh = fleet.open_session("t0", now=now)
            assert generation_of[fleet.route(fresh)] == gen
            # The losing generation drains once its sessions close.
            assert not fleet.drained(old)
            for sid in sessions:
                if generation_of[fleet.route(sid)] == old:
                    fleet.close_session(sid)
            fleet.poll(now=now + 1.0)
            assert fleet.drained(old)
            fleet.check_invariants()
        finally:
            fleet.close()

    @needs_scipy
    def test_divergent_shadow_canary_rolls_back_fenced(self):
        # The divergence-signal deployment: the canary serves the same
        # weights through a noisy hardware realization in shadow mode
        # (fused engine — hardware serving rides its weight override),
        # so every canary chunk reports an ideal-vs-hardware divergence
        # into the rolling window; a realization this bad must cross
        # the rollback threshold.
        net = make_net()
        fleet = make_fleet(net=net, replicas=2, engine="fused",
                           shadow_threshold=10_000)
        try:
            gen = fleet.deploy_canary(
                hardware=make_mapped(net, variation=2.5, seed=3),
                shadow=True, weight=0.5)
            sessions = [fleet.open_session("t0", now=0.0)
                        for _ in range(40)]
            self._fill_window(fleet, sessions)
            status = fleet.canary_status()
            assert status["observed"] >= 32
            assert status["mean_divergence"] > 0.05
            assert fleet.evaluate_canary() == "rollback"
            assert fleet.rollback_canary() == gen
            assert fleet.canary_generation is None
            generation_of = {r["replica"]: r["generation"]
                             for r in fleet.stats["per_replica"]}
            survivors = [sid for sid in sessions
                         if generation_of[fleet.route(sid)] == gen]
            assert survivors    # weight 0.5 put sessions on the canary
            # Generation-fenced drain: an in-flight canary session
            # keeps streaming on its replica until it closes...
            ticket = fleet.submit(survivors[0], make_chunk(seed=7),
                                  now=1.0)
            fleet.flush(now=1.0)
            assert ticket.ok
            # ...but no *new* session lands on the cancelled generation.
            fresh = fleet.open_session("t0", now=1.0)
            assert generation_of[fleet.route(fresh)] != gen
            for sid in survivors:
                fleet.close_session(sid)
            fleet.poll(now=2.0)
            assert fleet.drained(gen)
            fleet.check_invariants()
        finally:
            fleet.close()

    def test_evaluate_holds_below_min_chunks(self):
        fleet = make_fleet(replicas=1)
        try:
            fleet.deploy_canary(weight=0.5)
            assert fleet.evaluate_canary() == "hold"
        finally:
            fleet.close()

    def test_second_canary_needs_a_decision_first(self):
        fleet = make_fleet(replicas=1)
        try:
            fleet.deploy_canary(weight=0.5)
            with pytest.raises(StateError, match="already in flight"):
                fleet.deploy_canary(weight=0.5)
        finally:
            fleet.close()


class TestReplicaDown:
    def _kill_rule(self, replica=0):
        return faults.FaultPlan(
            (faults.FaultRule("fleet.replica.down", probability=1.0,
                              where={"replica": replica}, times=1),),
            seed=7)

    def test_dead_replica_fails_sessions_and_reconnect_reroutes(self):
        fleet = make_fleet(replicas=2)
        try:
            sids = [fleet.open_session("t0", now=0.0) for _ in range(4)]
            on_r0 = [sid for sid in sids if fleet.route(sid) == 0]
            with faults.active(self._kill_rule(replica=0)):
                fleet.poll(now=0.1)    # housekeeping consults the site
            assert fleet.live_replicas == 1
            with pytest.raises(StateError, match="reconnect"):
                fleet.submit(on_r0[0], make_chunk(), now=0.2)
            assert fleet.stats["lost_sessions"] == 1
            # Reconnect lands on the survivor and serves.
            sid = fleet.open_session("t0", now=0.2)
            assert fleet.route(sid) == 1
            ticket = fleet.submit(sid, make_chunk(), now=0.2)
            fleet.flush(now=0.2)
            assert ticket.ok
            fleet.check_invariants()
        finally:
            fleet.close()

    def test_kill_fails_pending_chunks_cleanly(self):
        fleet = make_fleet(replicas=2, max_wait_ms=10_000.0)
        try:
            sids = [fleet.open_session("t0", now=0.0) for _ in range(2)]
            tickets = [fleet.submit(sid, make_chunk(seed=i), now=0.0)
                       for i, sid in enumerate(sids)]
            victim = [t for t, sid in zip(tickets, sids)
                      if fleet.route(sid) == 0]
            with faults.active(self._kill_rule(replica=0)):
                fleet.poll(now=0.1)
            fleet.flush(now=0.1)
            for ticket in victim:
                assert ticket.done and not ticket.ok
                assert "down" in ticket.error
            # Conservation holds through the kill.
            fleet.check_invariants()
            books = fleet.stats["per_tenant"]["t0"]
            assert books["failed"] == len(victim)
        finally:
            fleet.close()


class TestMisrouteGuard:
    def test_misroute_is_detected_corrected_and_bitwise(self):
        chunks = [make_chunk(seed=i) for i in range(3)]
        expected = solo_outputs(chunks)
        plan = faults.FaultPlan(
            (faults.FaultRule("fleet.route.misroute", nth=(2,)),),
            seed=7)
        fleet = make_fleet(replicas=2)
        try:
            sid = fleet.open_session("t0", now=0.0)
            with faults.active(plan):
                for i, chunk in enumerate(chunks):
                    ticket = fleet.submit(sid, chunk, now=float(i))
                    fleet.flush(now=float(i))
                    assert ticket.ok
                    np.testing.assert_array_equal(
                        ticket.outputs, expected[i])
            assert fleet.stats["misroutes"] == 1
            fleet.check_invariants()
        finally:
            fleet.close()


class TestFleetAccounting:
    def test_stats_aggregate_replica_books(self):
        fleet = make_fleet(replicas=2)
        try:
            sids = [fleet.open_session("t0", now=0.0) for _ in range(4)]
            for i, sid in enumerate(sids):
                fleet.submit(sid, make_chunk(seed=i), now=0.0)
            fleet.flush(now=0.0)
            stats = fleet.stats
            assert stats["submitted"] == 4
            assert stats["completed"] == 4
            assert stats["replicas"] == 2
            assert stats["live_replicas"] == 2
            per_replica = {r["replica"]: r for r in stats["per_replica"]}
            assert len(per_replica) == 2
            assert sum(r["sessions"] for r in per_replica.values()) == 4
        finally:
            fleet.close()

    def test_check_invariants_catches_cooked_books(self):
        fleet = make_fleet(replicas=1)
        try:
            sid = fleet.open_session("t0", now=0.0)
            fleet.submit(sid, make_chunk(), now=0.0)
            fleet.flush(now=0.0)
            fleet.check_invariants()
            fleet._tenants["t0"].count("admitted")   # cook the books
            with pytest.raises(StateError):
                fleet.check_invariants()
        finally:
            fleet.close()

    def test_close_is_idempotent_and_repr_renders(self):
        fleet = make_fleet(replicas=2)
        assert "2 replicas" in repr(fleet)
        fleet.close()
        fleet.close()
