"""Fused, vectorized simulation engine for the core forward/backward loop.

The step-wise reference path (:meth:`SpikingNetwork.run` with
``engine="step"``) advances the whole stack one time step at a time,
dispatching through ``SpikingLinear.step`` -> ``neuron.step`` Python calls
and performing one small ``(batch, n_in) @ (n_in, n_out)`` matmul per layer
per step.  For the typical benchmark shapes (batch 32, T 100) that is
hundreds of tiny BLAS calls plus thousands of Python-level dispatches —
the dominant cost of every experiment in the repo.

This module removes that overhead by restructuring the loop nest.  The
network is feedforward and layer ``l`` at step ``t`` depends only on layer
``l-1`` at steps ``<= t`` (eq. 9 couples same-step outputs, never future
ones), so the time-major loop can be legally reordered layer-major: run
layer 0 over the entire sequence, then layer 1, and so on.  Per layer the
work then splits into

* **linear scans** — the synapse filter ``k[t] = alpha k[t-1] + x[t]``
  (eq. 9) and its adjoint are first-order recurrences evaluated in place
  over a preallocated ``(batch, T, n)`` buffer (:func:`exp_scan`,
  :func:`exp_scan_reverse`); each step is a fused elementwise update on a
  buffer slice, with no per-step allocation;
* **one batched matmul** — the crossbar product ``g = k W^T`` (eq. 7) for
  *all* time steps at once: ``(batch*T, n_in) @ (n_in, n_out)``, which is
  where BLAS actually wins;
* **a thin nonlinear scan** — the spike/threshold recurrence (eqs. 6, 8,
  10) is inherently sequential (the spike at ``t`` feeds the reset filter
  at ``t+1``) but involves only elementwise work on ``(batch, n_out)``
  slices, again over preallocated buffers.

The backward pass (:func:`fused_backward`) applies the same split to the
BPTT adjoints of :mod:`repro.core.backprop`: the sequential part is the
elementwise ``delta_v`` recurrence; the weight gradient collapses to a
single ``tensordot`` over ``(batch, T)`` and the input gradient to one
batched matmul followed by a reverse scan.

Precision: every entry point accepts ``precision="float32"|"float64"``
(:func:`resolve_precision`); float32 halves memory traffic and is
typically faster, at the cost of spike-level equivalence with the float64
reference (near-threshold membrane values may round across ``v_th``).

Workspace reuse: every entry point also accepts an optional
``ws``/``workspace`` — a :class:`repro.runtime.workspace.Workspace` — from
which the large ``(batch, T, n)`` buffers are checked out instead of
allocated.  The arithmetic is identical either way (buffers are
``np.empty`` equivalents); the caller (the :class:`~repro.core.trainer.
Trainer`, or a pool worker) recycles the recorded tensors once the step is
done, so steady-state training reallocates nothing.  ``ws=None`` (the
default) keeps the original allocate-per-call behavior.

Equivalence with the step-wise reference (same spikes, membrane traces and
gradients to tolerance) is tested in ``tests/unit/test_engine.py``; the
speedup is measured by ``benchmarks/bench_throughput.py`` and recorded in
``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError

try:  # scipy is optional; the engine falls back to dense BLAS without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is present in CI
    _sparse = None

__all__ = [
    "PRECISIONS",
    "resolve_precision",
    "exp_scan",
    "exp_scan_reverse",
    "fused_layer_forward",
    "fused_run",
    "fused_backward",
]

#: Supported precision names and their dtypes.
PRECISIONS = {"float32": np.float32, "float64": np.float64}

#: Use the CSR product when the spike density is below this and the input
#: is large enough for the conversion to pay off.
SPARSE_DENSITY_THRESHOLD = 0.2
_SPARSE_MIN_SIZE = 1 << 14


def resolve_precision(precision) -> np.dtype | None:
    """Map ``"float32"``/``"float64"`` (or a dtype-like) to a numpy dtype.

    ``None`` passes through (meaning "caller's default").
    """
    if precision is None:
        return None
    if isinstance(precision, str):
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {sorted(PRECISIONS)}, "
                f"got {precision!r}"
            )
        return np.dtype(PRECISIONS[precision])
    return np.dtype(precision)


# -- scan kernels -----------------------------------------------------------

def exp_scan(xs: np.ndarray, decay: float, out: np.ndarray | None = None) -> np.ndarray:
    """Causal first-order scan ``y[t] = decay*y[t-1] + x[t]`` along axis 1.

    ``xs`` has shape ``(batch, T, n)``.  The scan is evaluated in place
    over ``out`` (allocated once when omitted); each step is two fused
    elementwise ops on a ``(batch, n)`` slice.  ``out`` may alias ``xs``.
    """
    xs = np.asarray(xs)
    if out is None:
        out = np.empty_like(xs)
    steps = xs.shape[1]
    if steps == 0:
        return out
    out[:, 0] = xs[:, 0]
    if out is xs:
        scratch = np.empty(xs.shape[::2], dtype=xs.dtype)  # (batch, n)
        for t in range(1, steps):
            np.multiply(out[:, t - 1], decay, out=scratch)
            out[:, t] += scratch
    else:
        for t in range(1, steps):
            cur = out[:, t]
            np.multiply(out[:, t - 1], decay, out=cur)
            cur += xs[:, t]
    return out


def _ws_empty(ws, shape, dtype) -> np.ndarray:
    """``np.empty`` routed through a workspace when one is supplied."""
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.empty(shape, dtype)


def _ws_release(ws, *arrays) -> None:
    if ws is not None:
        ws.release(*arrays)


def _as_csr(flat: np.ndarray, ws=None):
    """Cheap CSR view of a sparse ``(m, n)`` spike matrix, or ``None``.

    ``scipy.sparse.csr_matrix(dense)`` costs as much as the GEMM it is
    meant to replace, so the index structure is built directly: one
    ``flatnonzero`` scan (indices come out sorted, i.e. canonical CSR
    order) plus a ``searchsorted`` for the row pointers.  Returns ``None``
    when scipy is missing, the matrix is small, or the density is too high
    for the sparse product to win.  ``ws`` serves the constant
    row-boundary scratch from its cache.
    """
    if _sparse is None or flat.size < _SPARSE_MIN_SIZE:
        return None
    m, n = flat.shape
    raveled = np.ascontiguousarray(flat).reshape(-1)
    # Explicit bool compare first: flatnonzero on a float array pays an
    # extra full-size temporary and runs ~3x slower.
    idx = np.flatnonzero(raveled != 0)
    if idx.size > SPARSE_DENSITY_THRESHOLD * flat.size:
        return None
    bounds = (ws.row_bounds(m, n) if ws is not None
              else np.arange(0, (m + 1) * n, n))
    indptr = np.searchsorted(idx, bounds)
    return _sparse.csr_matrix(
        (raveled[idx], idx % n, indptr), shape=(m, n)
    )


#: Default for ``spike_matmul``'s ``csr``: "not computed yet, decide here".
_AUTO_CSR = object()


def spike_matmul(flat_x: np.ndarray, w_t: np.ndarray, csr=_AUTO_CSR,
                 out: np.ndarray | None = None) -> np.ndarray:
    """``flat_x @ w_t`` exploiting spike sparsity when profitable.

    ``flat_x`` is a ``(batch*T, n_in)`` spike matrix (typically a few
    percent nonzero), ``w_t`` a dense ``(n_in, n_out)`` weight transpose.
    Falls back to the dense BLAS product when the input is dense or small.
    ``csr`` short-circuits the conversion: pass a CSR the caller already
    holds for ``flat_x``, or ``None`` to assert the input is known dense
    (skipping the conversion probe entirely).  ``out`` receives the dense
    product in place (the sparse product allocates its own result and
    ignores ``out``).
    """
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x)
    if csr is None:
        if out is not None:
            return np.matmul(flat_x, w_t, out=out)
        return flat_x @ w_t
    return csr @ w_t


def spike_outer(flat_dv: np.ndarray, flat_x: np.ndarray,
                csr=_AUTO_CSR) -> np.ndarray:
    """``flat_dv.T @ flat_x`` — the BPTT weight gradient contraction.

    ``flat_dv`` is the dense ``(batch*T, n_out)`` membrane adjoint and
    ``flat_x`` the ``(batch*T, n_in)`` presynaptic spikes; when the spikes
    are sparse the contraction runs as a CSC-dense product over the
    nonzeros only.  ``csr`` follows the :func:`spike_matmul` convention:
    a conversion the forward pass already paid for, ``None`` for "probed
    and dense" (no re-probe), or the default to probe here.
    """
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x)
    if csr is None:
        return flat_dv.T @ flat_x
    return np.ascontiguousarray((csr.T @ flat_dv).T)


def exp_scan_reverse(xs: np.ndarray, decay: float,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Anti-causal scan ``a[t] = x[t] + decay*a[t+1]`` along axis 1.

    The adjoint of :func:`exp_scan`.  Supports ``out is xs`` (in-place)
    for callers that want the adjoint without a second buffer;
    :func:`fused_backward` itself writes into a distinct buffer (the
    truncated mode still needs the pre-scan ``delta_v`` afterwards, and
    workspace reuse makes the second buffer free in steady state).
    """
    xs = np.asarray(xs)
    if out is None:
        out = np.empty_like(xs)
    steps = xs.shape[1]
    if steps == 0:
        return out
    if out is not xs:
        out[:, steps - 1] = xs[:, steps - 1]
    scratch = np.empty(xs.shape[::2], dtype=xs.dtype)  # (batch, n)
    for t in range(steps - 2, -1, -1):
        np.multiply(out[:, t + 1], decay, out=scratch)
        if out is xs:
            out[:, t] += scratch
        else:
            np.add(xs[:, t], scratch, out=out[:, t])
    return out


# -- forward ----------------------------------------------------------------

def fused_layer_forward(layer, xs: np.ndarray, need_k: bool = True,
                        _csr=_AUTO_CSR, ws=None
                        ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Run one :class:`~repro.core.layers.SpikingLinear` over a whole sequence.

    Parameters
    ----------
    layer:
        The layer to run (state is reinitialised, as in ``layer.run``).
    xs:
        Input spikes, shape ``(batch, T, n_in)``; dtype selects precision.
    need_k:
        Materialise the full synapse-filter trace ``k`` for recording.
        The fused math never needs it (the filter is applied *after* the
        crossbar product — the two commute), so pure inference skips the
        ``(batch, T, n_in)`` buffer entirely.
    ws:
        Optional :class:`~repro.runtime.workspace.Workspace` serving the
        large buffers (identical results; the caller recycles them).

    Returns
    -------
    (spikes, k, v):
        ``spikes`` and ``v`` have shape ``(batch, T, n_out)``; ``k`` is the
        synapse-filter trace ``(batch, T, n_in)`` for adaptive layers when
        ``need_k`` (else ``None``), and always ``None`` for hard-reset
        layers.  These are exactly the tensors a
        :class:`~repro.core.layers.LayerStepRecord` holds, so recording is
        free.  The layer/neuron incremental state is left at the final
        step's values, matching the step-wise path.
    """
    xs = np.asarray(xs)
    if xs.ndim != 3:
        raise ShapeError(f"{layer.name}: expected (batch, T, n_in), "
                         f"got {xs.shape}")
    if xs.shape[2] != layer.n_in:
        raise ShapeError(f"{layer.name}: expected {layer.n_in} inputs, "
                         f"got {xs.shape[2]}")
    if layer.neuron_kind == "adaptive":
        return _fused_adaptive_forward(layer, xs, need_k, _csr, ws)
    return _fused_hard_reset_forward(layer, xs, _csr, ws)


def _layer_gv(layer_weight, xs, dtype, csr, ws, gain: float = 1.0):
    """The crossbar product for every step at once: ``(batch, T, n_out)``.

    Dense inputs multiply straight into a workspace buffer; sparse inputs
    go through the CSR product (which allocates its own result — foreign
    to the workspace, which release() tolerates).  ``csr`` follows the
    :func:`spike_matmul` convention: a ready conversion, ``None`` for
    "probed and dense" (no re-probe), or ``_AUTO_CSR`` to probe here.
    """
    batch, steps, n_in = xs.shape
    n_out = layer_weight.shape[0]
    w_t = _ws_empty(ws, (n_in, n_out), dtype)
    np.copyto(w_t, layer_weight.T)
    if gain != 1.0:
        w_t *= dtype.type(gain)
    flat_x = xs.reshape(batch * steps, n_in)
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x, ws)
    if csr is None:
        gv = _ws_empty(ws, (batch, steps, n_out), dtype)
        spike_matmul(flat_x, w_t, csr=None,
                     out=gv.reshape(batch * steps, n_out))
    else:
        gv = np.ascontiguousarray(
            spike_matmul(flat_x, w_t, csr=csr)
        ).reshape(batch, steps, n_out)
    _ws_release(ws, w_t)
    return gv


def _fused_adaptive_forward(layer, xs, need_k, csr=_AUTO_CSR, ws=None):
    """Adaptive-threshold layer: sparse matmul -> scan -> threshold scan.

    The synapse filter (eq. 9) and the crossbar product (eq. 7) are both
    linear, so ``filter(x) @ W^T == filter(x @ W^T)``.  Evaluating the
    matmul first keeps its input the *raw spikes* — a few-percent-dense
    0/1 matrix that :func:`spike_matmul` contracts over nonzeros only —
    and moves the scan from the wide ``n_in`` axis to the narrow ``n_out``
    axis.
    """
    dtype = xs.dtype
    batch, steps, n_in = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    alpha = layer.alpha
    theta = neuron.params.theta
    v_th = neuron.params.v_th
    beta = neuron.beta_r
    if steps == 0:
        layer.reset_state(batch, dtype=dtype)
        empty = np.zeros((batch, 0, n_out), dtype=dtype)
        k = np.zeros((batch, 0, n_in), dtype=dtype) if need_k else None
        return empty, k, empty.copy()

    # Crossbar product of the raw spikes for every step at once, then the
    # synapse filter as an in-place scan over (batch, T, n_out).  ``gv``
    # starts life as g[t] and is rewritten to v[t] = g[t] - theta*h[t].
    gv = _layer_gv(layer.weight, xs, dtype, csr, ws)
    exp_scan(gv, alpha, out=gv)

    if need_k:
        k = exp_scan(xs, alpha, out=_ws_empty(ws, xs.shape, dtype))
    else:
        k = None

    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    h = np.zeros((batch, n_out), dtype=dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    o_prev = None
    for t in range(steps):
        # h[t] = beta*h[t-1] + O[t-1]   (eq. 8)
        h *= beta
        if o_prev is not None:
            h += o_prev
        v_t = gv[:, t]
        np.multiply(h, theta, out=scratch)
        v_t -= scratch                    # v[t] = g[t] - theta*h[t] (eq. 6)
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th            # O[t] = U(v[t] - Vth) (eq. 10/11)
        o_prev = o_t

    # Leave incremental state at the final step, like the step-wise path.
    if k is not None:
        layer.k = k[:, -1].copy()
    else:
        # Final filter state without the full trace: k[T-1] is the
        # alpha^(T-1-t)-weighted sum of the inputs.
        decay_powers = alpha ** np.arange(steps - 1, -1, -1, dtype=np.float64)
        layer.k = np.matmul(decay_powers.astype(dtype), xs)
    neuron.h = h
    neuron.last_output = spikes[:, -1].copy()
    _ws_release(ws, scratch)
    return spikes, k, gv


def _fused_hard_reset_forward(layer, xs, csr=_AUTO_CSR, ws=None):
    """Hard-reset layer: batched matmul -> leaky-integrate/reset scan."""
    dtype = xs.dtype
    batch, steps, n_in = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    alpha = neuron.alpha
    v_th = neuron.params.v_th
    if steps == 0:
        layer.reset_state(batch, dtype=dtype)
        empty = np.zeros((batch, 0, n_out), dtype=dtype)
        return empty, None, empty.copy()

    # Weighted input for every step at once (sparse over the raw spikes);
    # fold the discretisation gain into the weight so the scan below is
    # pure elementwise work.
    gv = _layer_gv(layer.weight, xs, dtype, csr, ws,
                   gain=float(neuron.input_gain))

    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    v_post = np.zeros((batch, n_out), dtype=dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    for t in range(steps):
        v_t = gv[:, t]
        np.multiply(v_post, alpha, out=scratch)
        v_t += scratch                    # v_pre[t] = alpha*v_post[t-1] + j[t]
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th
        np.subtract(1.0, o_t, out=scratch)
        np.multiply(v_t, scratch, out=v_post)   # hard reset (eq. 1b)

    # State parity with the step-wise path (whose reset_state zeroes the
    # unused synapse-filter buffer for hard-reset layers).
    layer.k = np.zeros((batch, n_in), dtype=dtype)
    neuron.v = v_post
    _ws_release(ws, scratch)
    return spikes, None, gv


def fused_run(network, inputs: np.ndarray, record: bool = False, ws=None):
    """Fused forward pass over the whole stack; drop-in for the step loop.

    ``inputs`` must already be a validated ``(batch, T, n_input)`` array of
    the desired precision (``SpikingNetwork.run`` handles coercion).
    Returns ``(outputs, RunRecord | None)`` identical in structure to the
    step-wise path; the per-layer ``k``/``v``/``spikes`` tensors come for
    free because the engine materialises them anyway for the batched
    matmuls.  With a workspace and ``record=False`` the intermediate
    layers' tensors are recycled as soon as the next layer has consumed
    them (the returned outputs stay checked out for the caller).
    """
    from .layers import LayerStepRecord   # local import: avoids a cycle
    from .network import RunRecord

    x = inputs
    layer_records: list[LayerStepRecord] = []
    input_csrs = []
    spikes = inputs
    for layer in network.layers:
        csr = _as_csr(x.reshape(-1, layer.n_in), ws)
        input_csrs.append(csr)
        spikes, k, v = fused_layer_forward(layer, x, need_k=record,
                                           _csr=csr, ws=ws)
        if record:
            layer_records.append(LayerStepRecord(k=k, v=v, spikes=spikes))
        elif ws is not None:
            ws.release(v)
            if x is not inputs:
                ws.release(x)
        x = spikes
    if not record:
        return spikes, None
    run_record = RunRecord(inputs=inputs, layers=layer_records)
    # Stash the CSR conversions so a following fused_backward on this
    # record reuses them for its weight-gradient contractions.
    run_record._input_csrs = input_csrs
    return spikes, run_record


# -- backward ---------------------------------------------------------------

def fused_backward(network, record, grad_outputs: np.ndarray,
                   mode: str = "exact", precision=None, ws=None,
                   need_input_grad: bool = True):
    """Fused BPTT through a recorded run; drop-in for
    :func:`repro.core.backprop.backward`.

    The adjoint recursions of the reference implementation are split the
    same way as the forward pass: the ``delta_v`` recurrence stays a
    sequential elementwise scan over preallocated ``(batch, T, n)``
    buffers, while the weight gradient becomes one ``tensordot`` over
    ``(batch, T)`` and the input gradient one batched matmul plus a
    reverse exponential scan (exact mode's ``alpha``-carry).

    ``precision`` defaults to the record's dtype (so a float32 forward run
    gets a float32 backward); pass ``"float64"`` to upcast.  ``ws`` serves
    and recycles the adjoint buffers; the only buffer that survives the
    call is the one captured by the deferred input-gradient closure, and
    that one is deliberately allocated outside the workspace.  Training
    never reads ``GradientResult.input_grad``, so the trainer/pool path
    passes ``need_input_grad=False`` — the closure (and its captured
    plain buffer + weight snapshot) is then skipped entirely and every
    adjoint buffer returns to the workspace.
    """
    if mode not in ("exact", "truncated"):
        raise ValueError(f"mode must be 'exact' or 'truncated', got {mode!r}")
    from .backprop import GradientResult   # local import: avoids a cycle

    outputs = record.outputs
    if grad_outputs.shape != outputs.shape:
        raise ShapeError(
            f"grad_outputs shape {grad_outputs.shape} != outputs {outputs.shape}"
        )
    dtype = resolve_precision(precision) or outputs.dtype

    grad_spikes = np.asarray(grad_outputs, dtype=dtype)
    cached_csrs = getattr(record, "_input_csrs", None)
    weight_grads: list[np.ndarray] = [None] * len(network.layers)
    input_grad_fn = None
    for index in range(len(network.layers) - 1, -1, -1):
        layer = network.layers[index]
        layer_record = record.layers[index]
        # Forward-pass conversions are authoritative: a cached CSR is
        # reused, a cached None means the input was probed dense (skip
        # re-probing).  Only a missing/incompatible cache re-probes.
        csr = _AUTO_CSR
        if cached_csrs is not None:
            csr = cached_csrs[index]
            if csr is not None and csr.dtype != dtype:
                csr = _AUTO_CSR
        defer = index == 0 and need_input_grad
        if layer.neuron_kind == "adaptive":
            w_grad, grad_inputs_fn, retained = _fused_backward_adaptive(
                layer, layer_record, record.layer_input(index),
                grad_spikes, mode, dtype, csr, defer, ws,
            )
        else:
            w_grad, grad_inputs_fn, retained = _fused_backward_hard_reset(
                layer, layer_record, record.layer_input(index),
                grad_spikes, dtype, csr, defer, ws,
            )
        weight_grads[index] = w_grad
        if index == 0:
            if need_input_grad:
                # The network-input gradient is only consumed by
                # sensitivity analyses, never by training — defer its
                # dense matmul until someone actually reads
                # GradientResult.input_grad.
                input_grad_fn = grad_inputs_fn
            else:
                # Closure discarded unused; its buffers recycle now.
                _ws_release(ws, *retained)
            # The last consumed adjoint is dead (a deferred closure
            # captures its own plain-allocated buffers, never this one).
            _ws_release(ws, grad_spikes)
        else:
            upstream = grad_spikes
            grad_spikes = grad_inputs_fn()
            # The consumed adjoint and this layer's scan buffers are dead
            # once the next upstream gradient exists.
            _ws_release(ws, upstream, *retained)
    return GradientResult(weight_grads=weight_grads, input_grad=None,
                          input_grad_fn=input_grad_fn)


def _fused_backward_adaptive(layer, layer_record, layer_inputs, grad_spikes,
                             mode, dtype, csr=_AUTO_CSR, defer=False,
                             ws=None):
    """Adaptive-layer adjoints with the matmuls hoisted out of the time loop.

    Sequential part (elementwise, reverse time)::

        delta_v[t] = (dE/dO[t] + reset_term[t]) * eps[t]
        exact:      reset_term[t] = a_h[t+1],  a_h[t] = beta*a_h[t+1] - theta*delta_v[t]
        truncated:  reset_term[t] = -theta * delta_v[t+1]

    Hoisted part — with ``e = exp_scan_reverse(delta_v, alpha)``, the
    synapse filter's adjoint.  The filter is linear, so it moves off the
    recorded trace ``k`` and onto the adjoint
    (``sum_t delta_v[t]^T k[t] == sum_s e[s]^T x[s]``), and it commutes
    with the weight product (``revscan(delta_v @ W) == e @ W``)::

        dE/dW    = sum_{b,s} e[b,s]^T x[b,s]    (sparse-aware contraction)
        dE/dx[t] = e @ W          (exact)
                 = delta_v @ W    (truncated; eq. 13 drops the alpha-carry)

    Working from the raw presynaptic spikes ``x`` instead of ``k`` lets
    :func:`spike_outer` contract over the spike nonzeros only, and is why
    the record's ``k`` tensor is never touched here.
    """
    params = layer.params
    theta = params.theta
    beta = layer.neuron.beta_r

    v = np.asarray(layer_record.v, dtype=dtype)
    batch, steps, n_out = v.shape

    eps = np.asarray(layer.surrogate.derivative(v - params.v_th), dtype=dtype)

    # The buffer the deferred (layer-0) closure captures must outlive this
    # call indefinitely, so it is never taken from the workspace.
    capture_dv = defer and mode == "truncated"
    if capture_dv:
        dv = np.empty((batch, steps, n_out), dtype=dtype)
    else:
        dv = _ws_empty(ws, (batch, steps, n_out), dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    if mode == "exact":
        a_h = np.zeros((batch, n_out), dtype=dtype)
        for t in range(steps - 1, -1, -1):
            dv_t = dv[:, t]
            np.add(grad_spikes[:, t], a_h, out=dv_t)
            dv_t *= eps[:, t]
            a_h *= beta
            np.multiply(dv_t, theta, out=scratch)
            a_h -= scratch
    else:
        np.multiply(grad_spikes[:, -1], eps[:, -1], out=dv[:, -1])
        for t in range(steps - 2, -1, -1):
            np.multiply(dv[:, t + 1], theta, out=scratch)
            np.subtract(grad_spikes[:, t], scratch, out=dv[:, t])
            dv[:, t] *= eps[:, t]
    _ws_release(ws, scratch)

    if defer and mode == "exact":
        e = exp_scan_reverse(dv, layer.alpha)          # captured: plain
    else:
        e = exp_scan_reverse(dv, layer.alpha,
                             out=_ws_empty(ws, dv.shape, dtype))
    flat_x = np.asarray(layer_inputs, dtype=dtype).reshape(
        batch * steps, layer.n_in
    )
    w_grad = spike_outer(e.reshape(batch * steps, n_out), flat_x, csr=csr)

    weight = np.asarray(layer.weight, dtype=dtype)
    if defer and weight is layer.weight:
        # The closure may be called after an in-place optimizer step;
        # snapshot the weights the forward pass actually used.
        weight = weight.copy()
    upstream = e if mode == "exact" else dv

    if defer:
        # Recycle whichever scan buffer the closure does not capture.
        _ws_release(ws, dv if mode == "exact" else e)

        def grad_inputs_fn() -> np.ndarray:
            return (upstream.reshape(batch * steps, n_out) @ weight).reshape(
                batch, steps, layer.n_in
            )

        return w_grad, grad_inputs_fn, ()

    def grad_inputs_fn() -> np.ndarray:
        out = _ws_empty(ws, (batch, steps, layer.n_in), dtype)
        np.matmul(upstream.reshape(batch * steps, n_out), weight,
                  out=out.reshape(batch * steps, layer.n_in))
        return out

    return w_grad, grad_inputs_fn, (dv, e)


def _fused_backward_hard_reset(layer, layer_record, layer_inputs,
                               grad_spikes, dtype, csr=_AUTO_CSR,
                               defer=False, ws=None):
    """Hard-reset adjoints with the matmuls hoisted (reset gate detached)."""
    params = layer.params
    alpha = layer.neuron.alpha
    input_gain = getattr(layer.neuron, "input_gain", 1.0)

    v_pre = np.asarray(layer_record.v, dtype=dtype)
    spikes = np.asarray(layer_record.spikes, dtype=dtype)
    layer_inputs = np.asarray(layer_inputs, dtype=dtype)
    batch, steps, n_out = v_pre.shape

    eps = np.asarray(layer.surrogate.derivative(v_pre - params.v_th),
                     dtype=dtype)

    # delta_v[t] = dE/dO[t]*eps[t] + alpha*(1 - O[t])*delta_v[t+1]
    # (``dv`` is what a deferred closure captures, so plain-allocated then).
    if defer:
        dv = np.empty((batch, steps, n_out), dtype=dtype)
    else:
        dv = _ws_empty(ws, (batch, steps, n_out), dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    np.multiply(grad_spikes[:, -1], eps[:, -1], out=dv[:, -1])
    for t in range(steps - 2, -1, -1):
        dv_t = dv[:, t]
        np.subtract(1.0, spikes[:, t], out=scratch)
        scratch *= dv[:, t + 1]
        scratch *= alpha
        np.multiply(grad_spikes[:, t], eps[:, t], out=dv_t)
        dv_t += scratch
    _ws_release(ws, scratch)

    weight = np.asarray(layer.weight, dtype=dtype)
    if defer and weight is layer.weight:
        # Snapshot: the closure may run after an in-place optimizer step.
        weight = weight.copy()
    flat_x = layer_inputs.reshape(batch * steps, layer.n_in)
    w_grad = spike_outer(dv.reshape(batch * steps, n_out), flat_x, csr=csr)
    if input_gain != 1.0:
        w_grad *= input_gain

    if defer:
        def grad_inputs_fn() -> np.ndarray:
            grad_inputs = (dv.reshape(batch * steps, n_out) @ weight
                           ).reshape(batch, steps, layer.n_in)
            if input_gain != 1.0:
                grad_inputs *= input_gain
            return grad_inputs

        return w_grad, grad_inputs_fn, ()

    def grad_inputs_fn() -> np.ndarray:
        out = _ws_empty(ws, (batch, steps, layer.n_in), dtype)
        np.matmul(dv.reshape(batch * steps, n_out), weight,
                  out=out.reshape(batch * steps, layer.n_in))
        if input_gain != 1.0:
            out *= input_gain
        return out

    return w_grad, grad_inputs_fn, (dv,)
