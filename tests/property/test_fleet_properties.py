"""Property tests for the fleet's routing, admission, and rollout laws.

The fleet promises (``docs/fleet.md``):

* **Sticky routing** — a session's replica is fixed at
  :meth:`~repro.serve.Fleet.open_session` and is a pure function of
  the session id thereafter: no interleaving of other sessions'
  traffic, polls, or flushes ever moves it.
* **Quota conservation** — per tenant, every offered chunk lands in
  exactly one book: ``offered == admitted + rejected_quota +
  rejected_queue + voided``, whatever the submission order, quota
  shape, or tick schedule — and the fleet-wide tripwire
  (:meth:`~repro.serve.Fleet.check_invariants`) agrees.
* **Weighted canary draw** — at a fixed fleet seed the share of new
  sessions routed to a weight-``w`` canary generation stays within a
  fixed tolerance of ``w`` (the draw is a seeded Bernoulli stream, so
  for a pinned seed this is deterministic, not flaky).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CapacityError
from repro.core import SpikingNetwork
from repro.serve import Fleet, TenantQuota

SIZES = (16, 12, 8)

#: |canary session share - weight| ceiling for CANARY_SESSIONS seeded
#: draws (~4 sigma of the Bernoulli share at w = 0.5, n = 100).
CANARY_TOLERANCE = 0.2
CANARY_SESSIONS = 100


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_fleet(**kwargs):
    kwargs.setdefault("engine", "step")
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_ms", 0.0)
    kwargs.setdefault("queue_limit", 8)
    kwargs.setdefault("seed", 0)
    return Fleet(make_net(), **kwargs)


def make_chunk(seed=0, steps=4, density=0.2):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


# One interleaved step: (session index, op) where op submits a chunk,
# polls, or flushes the whole fleet.
ops_st = st.lists(
    st.tuples(st.integers(0, 7), st.sampled_from(["submit", "poll",
                                                  "flush"])),
    min_size=1, max_size=40)


class TestStickyRouting:
    @settings(max_examples=40, deadline=None)
    @given(ops=ops_st, replicas=st.integers(1, 3))
    def test_route_never_moves_under_interleaving(self, ops, replicas):
        fleet = make_fleet(replicas=replicas)
        try:
            sids = [fleet.open_session(f"t{i % 2}", now=0.0)
                    for i in range(8)]
            pinned = {sid: fleet.route(sid) for sid in sids}
            now = 0.0
            for index, op in ops:
                now += 0.001
                sid = sids[index]
                if op == "submit":
                    try:
                        fleet.submit(sid, make_chunk(seed=index), now=now)
                    except CapacityError:
                        pass   # bounded queue; admission is not routing
                elif op == "poll":
                    fleet.poll(now=now)
                else:
                    fleet.flush(now=now)
                assert {s: fleet.route(s) for s in sids} == pinned
            fleet.flush(now=now + 1.0)
            assert {s: fleet.route(s) for s in sids} == pinned
        finally:
            fleet.close()


quota_st = st.one_of(
    st.none(),
    st.builds(TenantQuota,
              rate_rps=st.one_of(st.none(),
                                 st.floats(1.0, 50.0)),
              burst=st.integers(1, 4),
              max_pending=st.one_of(st.none(), st.integers(1, 3))))


class TestQuotaConservation:
    @settings(max_examples=40, deadline=None)
    @given(quotas=st.tuples(quota_st, quota_st),
           submits=st.lists(st.tuples(st.integers(0, 1),
                                      st.floats(0.0, 1.0)),
                            min_size=1, max_size=40),
           flush_every=st.integers(1, 8))
    def test_offered_splits_exactly_into_the_books(
            self, quotas, submits, flush_every):
        fleet = make_fleet(replicas=2)
        try:
            for name, quota in zip(("a", "b"), quotas):
                if quota is not None:
                    fleet.set_quota(name, quota)
            sessions = {name: fleet.open_session(name, now=0.0)
                        for name in ("a", "b")}
            offered = {"a": 0, "b": 0}
            admitted = {"a": 0, "b": 0}
            rejected = {"a": 0, "b": 0}
            # Monotone virtual clock: hypothesis picks the gaps.
            now = 0.0
            for count, (tenant_ix, gap) in enumerate(submits):
                name = "ab"[tenant_ix]
                now += gap
                offered[name] += 1
                try:
                    fleet.submit(sessions[name], make_chunk(seed=count),
                                 now=now)
                    admitted[name] += 1
                except CapacityError:
                    rejected[name] += 1
                if count % flush_every == 0:
                    fleet.poll(now=now)
            fleet.flush(now=now + 1.0)
            books = fleet.stats["per_tenant"]
            for name in ("a", "b"):
                assert books[name]["offered"] == offered[name]
                assert books[name]["admitted"] == admitted[name]
                assert (books[name]["rejected_quota"]
                        + books[name]["rejected_queue"]
                        + books[name]["voided"]) == rejected[name]
                assert books[name]["offered"] == (
                    books[name]["admitted"]
                    + books[name]["rejected_quota"]
                    + books[name]["rejected_queue"]
                    + books[name]["voided"])
            fleet.check_invariants()
        finally:
            fleet.close()


class TestCanaryWeight:
    @settings(max_examples=20, deadline=None)
    @given(weight=st.floats(0.1, 0.9), seed=st.integers(0, 5))
    def test_session_share_tracks_weight_at_fixed_seed(self, weight,
                                                       seed):
        fleet = make_fleet(replicas=2, seed=seed)
        try:
            fleet.deploy_canary(weight=weight, replicas=1)
            for _ in range(CANARY_SESSIONS):
                fleet.open_session("t0", now=0.0)
            share = (fleet.canary_status()["sessions"]
                     / CANARY_SESSIONS)
            assert abs(share - weight) <= CANARY_TOLERANCE
        finally:
            fleet.close()

    def test_weight_zero_is_never_drawn_weight_one_always(self):
        with make_fleet(replicas=2, seed=3) as fleet:
            with pytest.raises(ValueError, match="weight"):
                fleet.deploy_canary(weight=0.0)
            fleet.deploy_canary(weight=1.0, replicas=1)
            for _ in range(20):
                fleet.open_session("t0", now=0.0)
            assert fleet.canary_status()["sessions"] == 20
