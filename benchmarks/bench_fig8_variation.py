"""Fig. 8 — accuracy under 4/5-bit quantization and RRAM process variation.

Paper shape: accuracy degrades gracefully as resistance deviation grows
from 0 to 0.5; 5-bit stays at or above 4-bit; at 4-bit / 0.2 deviation the
model keeps ~97.97 % of a 98.40 % baseline (a sub-half-point drop).
Asserted here on the reduced model: graceful degradation, 5-bit >= 4-bit
on average, and a small drop at the paper's highlighted operating point.
"""

from conftest import bench_experiment


def test_fig8_variation(benchmark):
    result = bench_experiment(benchmark, "fig8")
    summary = result.summary

    # Quantization alone (variation 0) costs little.
    assert summary["acc_4bit_novar"] > summary["baseline"] - 0.10
    assert summary["acc_5bit_novar"] > summary["baseline"] - 0.08

    # More precision never hurts on average across the sweep.
    assert summary["mean_gap_5bit_minus_4bit"] > -0.03

    # Graceful degradation: even at 0.5 deviation the model is far from
    # chance (paper stays above 96.5 % throughout; we allow a wider band
    # at reduced scale but require > 3x chance = 30 %).
    assert summary["acc_4bit_maxvar"] > 0.3
    assert summary["acc_5bit_maxvar"] > 0.3

    # The paper's highlighted point: 4-bit, 0.2 deviation — small drop.
    assert summary["acc_4bit_02"] > summary["baseline"] - 0.12

    # Monotone-ish: max variation is not better than no variation.
    assert summary["acc_4bit_maxvar"] <= summary["acc_4bit_novar"] + 0.05
    assert summary["acc_5bit_maxvar"] <= summary["acc_5bit_novar"] + 0.05
