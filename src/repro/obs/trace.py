"""Structured tracing: spans, events, a bounded ring buffer, JSONL export.

The *temporal* half of the telemetry plane (:mod:`repro.obs`).  A
:class:`Tracer` records two record shapes:

* **spans** — named intervals with ``start``/``duration`` on the
  tracer's clock, opened with :meth:`Tracer.span` (a context manager)
  and nested through a current-span stack (children carry
  ``parent``);
* **events** — named instants (``duration`` is ``None``), e.g. a ticket
  changing state or a fault rule firing.

Determinism is the design center: ids are *sequential*, never random —
``trace`` ids count root spans, ``span`` ids count records — and the
clock is injectable, so a run driven by a fake timer exports
byte-identical JSONL twice in a row (pinned by the harness trace tests).

The buffer is a ring (``capacity`` records, default 2\\ :sup:`16`);
overflow drops the *oldest* records and counts them in
:attr:`Tracer.dropped` — telemetry must never grow without bound under
an unexpectedly chatty workload.

Export is JSON Lines, one record per line with a fixed key order
(:data:`RECORD_FIELDS`); :func:`parse_jsonl` is the schema validator the
``obs-smoke`` gate and ``tools/trace_view.py`` read traces through.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

__all__ = ["RECORD_FIELDS", "Span", "Tracer", "parse_jsonl",
           "validate_record"]

#: Fixed JSONL key order of one trace record.
RECORD_FIELDS = ("type", "trace", "span", "parent", "name", "start",
                 "duration", "attrs")

#: Shared compact encoder — ``json.dumps`` with keyword arguments
#: builds a fresh ``JSONEncoder`` per call, which dominates export time
#: at trace scale.
_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=False)


#: Exact types that pass through :func:`_coerce` untouched — the hot
#: path (thousands of events per serving run) skips the function call
#: entirely for these.
_SAFE_SCALARS = frozenset({type(None), bool, int, float, str})


def _coerce_attrs(attrs: dict) -> dict:
    """Coerce ``attrs`` values in place; ``attrs`` must be a fresh dict
    (the ``**kwargs`` mapping) the caller owns."""
    for key, value in attrs.items():
        if type(value) not in _SAFE_SCALARS:
            attrs[key] = _coerce(value)
    return attrs


_INFINITIES = (float("inf"), float("-inf"))


def _attrs_json(attrs: dict) -> str:
    """Compact JSON for a coerced attrs dict.

    Values are scalars by construction (:func:`_coerce_attrs` ran at
    record time) and keys are ``**kwargs`` identifiers, so almost every
    item renders with plain formatting; strings, non-finite floats and
    exotic keys fall back to the shared encoder.  This is the body of
    the export loop — about 2x faster than encoding the dict whole.
    """
    if not attrs:
        return "{}"
    encode = _ENCODER.encode
    parts = []
    for key, value in attrs.items():
        if '"' in key or "\\" in key:
            key_json = encode(key)
        else:
            key_json = f'"{key}"'
        kind = type(value)
        if kind is int:
            parts.append("%s:%d" % (key_json, value))
        elif kind is float:
            if value == value and value not in _INFINITIES:
                parts.append("%s:%s" % (key_json, repr(value)))
            else:  # nan/inf: keep json.dumps' (non-standard) spelling
                parts.append("%s:%s" % (key_json, encode(value)))
        elif kind is bool:
            parts.append("%s:true" % key_json if value
                         else "%s:false" % key_json)
        elif value is None:
            parts.append("%s:null" % key_json)
        else:
            parts.append("%s:%s" % (key_json, encode(value)))
    return "{" + ",".join(parts) + "}"


def _coerce(value):
    """Attribute values must survive JSON exactly: scalars only."""
    if value is None or isinstance(value, (bool, int, float, str)):
        # Flatten float subclasses (np.float64) to builtins so
        # json.dumps output is stable across numpy versions.
        if isinstance(value, bool):
            return bool(value)
        if isinstance(value, int):
            return int(value)
        if isinstance(value, float):
            return float(value)
        return value
    # numpy scalars without builtin parentage (np.int64 under numpy 2):
    # unwrap through .item() rather than import numpy here.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
        except Exception:
            return str(value)
        if unwrapped is not value:
            return _coerce(unwrapped)
    return str(value)


class Span:
    """One open interval; also the context manager :meth:`Tracer.span`
    returns.  Attributes may be added while open via :meth:`set`."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "start", "duration", "attrs")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: str | None, name: str, start: float,
                 attrs: dict):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: float | None = None
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        for key, value in attrs.items():
            self.attrs[key] = _coerce(value)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)

    def __repr__(self) -> str:
        state = ("open" if self.duration is None
                 else f"{1e3 * self.duration:.3f} ms")
        return f"Span({self.name}, {self.span_id}, {state})"


class Tracer:
    """Span/event recorder with a bounded ring buffer.

    Parameters
    ----------
    clock:
        0-arg callable returning seconds (monotonic); default
        ``time.perf_counter``.  The harness injects its fake timer here,
        which is what makes exported traces reproducible.
    capacity:
        Ring-buffer size in records; the oldest records are dropped
        (and counted in :attr:`dropped`) past it.
    """

    def __init__(self, clock=None, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = time.perf_counter if clock is None else clock
        self.capacity = int(capacity)
        # Ring of closed records as bare field tuples (RECORD_FIELDS
        # order); dict views materialize on .records access only.
        self._records: deque[tuple] = deque(maxlen=self.capacity)
        self._stack: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------------
    def _next_span_id(self) -> str:
        self._span_seq += 1
        return f"sp{self._span_seq:06d}"

    def _current_ids(self) -> tuple[str, str | None]:
        """(trace id, parent span id) for a new record opened now."""
        if self._stack:
            top = self._stack[-1]
            return top.trace_id, top.span_id
        self._trace_seq += 1
        return f"tr{self._trace_seq:04d}", None

    def _append(self, record: tuple) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def span(self, name: str, **attrs) -> Span:
        """Open a child span of the current span (a context manager)."""
        trace_id, parent_id = self._current_ids()
        span = Span(self, trace_id, self._next_span_id(), parent_id, name,
                    float(self.clock()), _coerce_attrs(attrs))
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration = float(self.clock()) - span.start
        # Tolerate exotic exits (a generator abandoned mid-span): pop to
        # this span, closing anything opened inside and never closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._append(("span", span.trace_id, span.span_id, span.parent_id,
                      span.name, span.start, span.duration, span.attrs))

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event under the current span (if any).

        The hottest recording path (three lifecycle events per served
        request): id bookkeeping, attr coercion and the ring append are
        inlined here on purpose, the ring stores a bare tuple — the
        dict view is only built on :attr:`records` access — and nothing
        is returned.
        """
        stack = self._stack
        if stack:
            top = stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            self._trace_seq += 1
            trace_id, parent_id = f"tr{self._trace_seq:04d}", None
        self._span_seq += 1
        for key, value in attrs.items():
            if type(value) not in _SAFE_SCALARS:
                attrs[key] = _coerce(value)
        record = ("event", trace_id, f"sp{self._span_seq:06d}", parent_id,
                  name, float(self.clock()), None, attrs)
        records = self._records
        if len(records) == self.capacity:
            self.dropped += 1
        records.append(record)

    # -- access / export ------------------------------------------------------
    @property
    def records(self) -> list[dict]:
        """Closed records, oldest first (open spans are not included)."""
        return [dict(zip(RECORD_FIELDS, record))
                for record in self._records]

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def export_jsonl(self) -> str:
        """One JSON object per line, fixed key order, oldest first.

        The envelope is rendered by hand: ``type``/``trace``/``span``/
        ``parent`` are tokens this tracer generated (never need
        escaping), ``start``/``duration`` are floats whose ``repr`` is
        shortest-round-trip JSON, and only the free-form fields
        (``name``, ``attrs``) go through the JSON encoder.  Roughly 3x
        faster than encoding whole records, which is what keeps the
        telemetry overhead gate (``tools/obs_smoke.py``) honest.
        """
        encode = _ENCODER.encode
        lines = [
            '{"type":"%s","trace":"%s","span":"%s","parent":%s,'
            '"name":%s,"start":%s,"duration":%s,"attrs":%s}' % (
                rtype, trace, span,
                "null" if parent is None else f'"{parent}"',
                encode(name), repr(start),
                "null" if duration is None else repr(duration),
                _attrs_json(attrs))
            for rtype, trace, span, parent, name, start, duration, attrs
            in self._records
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> Path:
        path = Path(path)
        path.write_text(self.export_jsonl(), encoding="utf-8")
        return path

    def __len__(self) -> int:
        """Closed-record count (no dict materialization)."""
        return len(self._records)

    def __repr__(self) -> str:
        return (f"Tracer({len(self._records)}/{self.capacity} records, "
                f"dropped={self.dropped}, open={len(self._stack)})")


def validate_record(record: dict) -> dict:
    """Raise ``ValueError`` unless ``record`` matches the trace schema."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got "
                         f"{type(record).__name__}")
    missing = [field for field in RECORD_FIELDS if field not in record]
    if missing:
        raise ValueError(f"trace record is missing fields {missing}")
    extra = sorted(set(record) - set(RECORD_FIELDS))
    if extra:
        raise ValueError(f"trace record has unknown fields {extra}")
    if record["type"] not in ("span", "event"):
        raise ValueError(f"trace record type must be span|event, "
                         f"got {record['type']!r}")
    for field in ("trace", "span", "name"):
        if not isinstance(record[field], str) or not record[field]:
            raise ValueError(f"trace record {field!r} must be a non-empty "
                             f"string, got {record[field]!r}")
    if record["parent"] is not None and not isinstance(record["parent"], str):
        raise ValueError("trace record parent must be a span id or null")
    if not isinstance(record["start"], (int, float)):
        raise ValueError("trace record start must be a number")
    duration = record["duration"]
    if record["type"] == "span":
        if not isinstance(duration, (int, float)) or duration < 0:
            raise ValueError("span records need a duration >= 0")
    elif duration is not None:
        raise ValueError("event records carry duration null")
    if not isinstance(record["attrs"], dict):
        raise ValueError("trace record attrs must be an object")
    for key, value in record["attrs"].items():
        if value is not None and not isinstance(value, (bool, int, float,
                                                        str)):
            raise ValueError(
                f"trace attr {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}")
    return record


def parse_jsonl(text: str) -> list[dict]:
    """Parse and validate a JSONL trace export; raises ``ValueError`` on
    the first malformed line (with its line number)."""
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not JSON: "
                             f"{exc}") from exc
        try:
            records.append(validate_record(record))
        except ValueError as exc:
            raise ValueError(f"trace line {lineno}: {exc}") from exc
    return records
