"""Unit tests for the experiment registry, paper config and CLI plumbing.

The heavy experiment runners are exercised by the benchmark suite; here we
test the cheap runners end to end and the registry/CLI mechanics.
"""

import numpy as np
import pytest

from repro.common.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    PAPER_CONFIG,
    get_experiment,
    resolve_profile,
    run_experiment,
    table1,
)
from repro.experiments.cli import main


class TestPaperConfig:
    def test_table1_values(self):
        assert PAPER_CONFIG.tau == 4.0
        assert PAPER_CONFIG.tau_r == 4.0
        assert PAPER_CONFIG.tau_m == 4.0
        assert PAPER_CONFIG.tau_s == 1.0
        assert PAPER_CONFIG.batch_size == 64
        assert PAPER_CONFIG.lr_classification == 1e-4
        assert PAPER_CONFIG.lr_association == 1e-3
        assert PAPER_CONFIG.sigma == pytest.approx(1.0 / np.sqrt(2 * np.pi))
        assert PAPER_CONFIG.optimizer == "adamw"

    def test_table1_render(self):
        text = table1().render()
        assert "AdamW" in text
        assert "64" in text


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        artifacts = {spec.paper_artifact for spec in EXPERIMENTS.values()}
        for required in ("Table I", "Table II (N-MNIST rows)",
                         "Table II (SHD rows)", "Fig. 1", "Fig. 4",
                         "Fig. 5", "Fig. 7", "Fig. 8", "Section V-C"):
            assert required in artifacts

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_specs_have_descriptions(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert callable(spec.runner)


class TestProfiles:
    def test_explicit_wins(self):
        assert resolve_profile("full") == "full"
        assert resolve_profile("ci") == "ci"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert resolve_profile(None) == "full"
        monkeypatch.setenv("REPRO_PROFILE", "anything-else")
        assert resolve_profile(None) == "ci"

    def test_invalid_explicit(self):
        with pytest.raises(ValueError):
            resolve_profile("huge")


class TestCheapRunners:
    def test_table1_runner(self):
        result = run_experiment("table1")
        assert result.summary["tau"] == 4.0
        assert "AdamW" in result.text

    def test_fig1_runner(self):
        result = run_experiment("fig1")
        assert result.summary["output_spikes"] >= 1
        # Threshold returns to (near) base after jumping.
        assert result.summary["threshold_peak"] > \
            result.summary["threshold_base"]
        # Threshold jumps by ~theta when a spike is emitted.
        assert result.summary["mean_jump_after_spike"] > 0.3

    def test_fig7_runner(self):
        result = run_experiment("fig7")
        assert result.summary["output_spikes"] == 1
        assert result.summary["threshold_peak"] > \
            result.summary["threshold_base"]
        assert "time" in result.data


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2-shd" in out
        assert "fig8" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Parameters" in out

    def test_run_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])
