"""Engineering throughput benchmarks for the core kernels.

These are conventional pytest-benchmark microbenchmarks (multiple rounds)
for the kernels everything else is built from: network forward, exact
BPTT backward, crossbar analog product, cochlea encoding, and the MNA
transient solver.  They guard against performance regressions and give a
cost model for scaling the experiments.

The forward/backward benchmarks cover both simulation engines: the fused
vectorized engine (the default everywhere, ``repro.core.engine``) and the
step-wise reference loop it replaced.  The train-step benchmarks cover the
parallel runtime: the serial fused trainer (with its workspace arenas)
against the data-parallel worker pool at 2 workers.  Measured ratios are
recorded in ``docs/performance.md``; ``make bench-json`` distills the same
quantities into ``BENCH_throughput.json``.
"""

import numpy as np
import pytest

from repro.common.benchcfg import (
    BENCH_FORWARD_BATCH,
    BENCH_SIZES,
    BENCH_TRAIN_BATCH,
    bench_inputs,
    bench_network,
)
from repro.common.rng import RandomState
from repro.core import (
    CrossEntropyRateLoss,
    Trainer,
    TrainerConfig,
    backward,
)
from repro.data.cochlea import Cochlea, CochleaConfig
from repro.data.speech import synthesize_digit
from repro.hardware.crossbar import DifferentialCrossbar
from repro.hardware.devices import RRAMDeviceConfig
from repro.hardware.neuron_circuit import NeuronCircuitConfig, simulate_neuron


@pytest.fixture(scope="module")
def forward_setup():
    """Canonical forward bench point (see repro.common.benchcfg)."""
    return bench_network(), bench_inputs(BENCH_FORWARD_BATCH)


def test_forward_throughput(benchmark, forward_setup):
    """Default path: the fused vectorized engine."""
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x))
    assert out.shape == (32, 100, 20)


def test_forward_throughput_step_reference(benchmark, forward_setup):
    """The step-wise reference loop the fused engine is measured against."""
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x, engine="step"))
    assert out.shape == (32, 100, 20)


def test_forward_throughput_float32(benchmark, forward_setup):
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x, precision="float32"))
    assert out.dtype == np.float32


def test_backward_throughput(benchmark, forward_setup):
    """Default path: the fused BPTT kernels."""
    net, x = forward_setup
    labels = np.arange(BENCH_FORWARD_BATCH) % BENCH_SIZES[-1]
    loss = CrossEntropyRateLoss()
    out, record = net.run(x, record=True)
    _, grad_out = loss.value_and_grad(out, labels)

    result = benchmark(lambda: backward(net, record, grad_out))
    assert all(np.all(np.isfinite(g)) for g in result.weight_grads)


def test_backward_throughput_reference(benchmark, forward_setup):
    """The per-step adjoint loops the fused backward is measured against."""
    net, x = forward_setup
    labels = np.arange(BENCH_FORWARD_BATCH) % BENCH_SIZES[-1]
    loss = CrossEntropyRateLoss()
    out, record = net.run(x, record=True)
    _, grad_out = loss.value_and_grad(out, labels)

    result = benchmark(
        lambda: backward(net, record, grad_out, engine="reference"))
    assert all(np.all(np.isfinite(g)) for g in result.weight_grads)


@pytest.fixture
def train_setup():
    """Paper-shape training step: batch 64, T=100, 700-128-128-20 MLP.

    Function-scoped on purpose: train-step benchmarks mutate the weights
    every round, so the serial and parallel variants must each start from
    the same pristine initialisation to be comparable.
    """
    net = bench_network()
    x = bench_inputs(BENCH_TRAIN_BATCH, seed=3)
    labels = np.arange(BENCH_TRAIN_BATCH) % BENCH_SIZES[-1]
    return net, x, labels


def _make_trainer(net, workers, hardware=None):
    return Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
        epochs=1, batch_size=BENCH_TRAIN_BATCH, learning_rate=1e-4,
        optimizer="adamw", workers=workers, hardware=hardware))


def test_train_step_throughput(benchmark, train_setup):
    """Serial fused forward+BPTT+update (workspace arenas active)."""
    net, x, labels = train_setup
    trainer = _make_trainer(net, workers=0)
    loss = benchmark(lambda: trainer.train_batch(x, labels))
    assert np.isfinite(loss)


def test_train_step_throughput_workers2(benchmark, train_setup):
    """Data-parallel training step over a 2-worker shared-memory pool.

    The interesting number on a multi-core machine; on a single core it
    measures the runtime's dispatch overhead instead.
    """
    net, x, labels = train_setup
    trainer = _make_trainer(net, workers=2)
    try:
        loss = benchmark(lambda: trainer.train_batch(x, labels))
        assert np.isfinite(loss)
    finally:
        trainer.close()


def test_train_step_throughput_hardware_aware(benchmark, train_setup):
    """Hardware-aware (quantize-in-the-loop) train step, no device noise.

    Measures the straight-through-estimator overhead: one fake-quant pass
    over the master weights per step plus the weight-override forward/
    backward.  Compare against ``test_train_step_throughput``.
    """
    from repro.hardware import HardwareProfile

    net, x, labels = train_setup
    trainer = _make_trainer(
        net, workers=0,
        hardware=HardwareProfile.create(bits=4, variation=0.0, seed=13))
    loss = benchmark(lambda: trainer.train_batch(x, labels))
    assert np.isfinite(loss)


def test_train_step_throughput_hardware_aware_noise(benchmark, train_setup):
    """Hardware-aware train step with per-step programming-noise draws.

    Adds the lognormal variation sampling (two draws per layer, the
    crossbar noise model) on top of the quantize path — the full Fig. 8
    operating-point training cost (4-bit, 10 % variation).
    """
    from repro.hardware import HardwareProfile

    net, x, labels = train_setup
    trainer = _make_trainer(
        net, workers=0,
        hardware=HardwareProfile.create(bits=4, variation=0.1, seed=13))
    loss = benchmark(lambda: trainer.train_batch(x, labels))
    assert np.isfinite(loss)


def test_crossbar_matvec_throughput(benchmark):
    rng = RandomState(2)
    weights = rng.normal(0, 0.1, (128, 700))
    xbar = DifferentialCrossbar(
        weights, RRAMDeviceConfig(levels=16, variation=0.1), rng=3)
    x = rng.random((64, 700))

    out = benchmark(lambda: xbar.matvec(x))
    assert out.shape == (64, 128)


def test_cochlea_encode_throughput(benchmark):
    wave = synthesize_digit("english", 3, rng=0)
    cochlea = Cochlea(CochleaConfig())

    spikes = benchmark(lambda: cochlea.encode(wave, steps=100, rng=0))
    assert spikes.shape == (100, 700)


def test_circuit_transient_throughput(benchmark):
    config = NeuronCircuitConfig()

    result = benchmark.pedantic(
        lambda: simulate_neuron([50, 70, 90], config=config,
                                duration_ns=400),
        rounds=3, iterations=1,
    )
    assert result.output_spike_count() >= 0
