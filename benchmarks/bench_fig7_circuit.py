"""Fig. 7 — transistor-level (behavioral) circuit transient.

The paper's simulation shows: the filtered input k(t) driving the
bit-line PSP, the comparator firing when the PSP crosses the adaptive
threshold, the feedback filter raising the threshold (which switches the
comparator back off, creating a spike), and the raised threshold
suppressing the following input spike.
"""

import numpy as np

from conftest import bench_experiment


def test_fig7_circuit(benchmark):
    result = bench_experiment(benchmark, "fig7")
    summary = result.summary

    # Exactly one output spike from the burst; the later isolated input
    # spikes are suppressed by the raised threshold (refractory).
    assert summary["output_spikes"] == 1

    # The threshold rises above its bias after the spike and the feedback
    # node shows the filtered comparator pulse.
    assert summary["threshold_peak"] > summary["threshold_base"] + 0.01
    assert summary["feedback_peak"] > 0.0

    time = result.data["time"]
    spike = result.data["spike"]
    g = result.data["g"]
    threshold = result.data["threshold"]

    # Causality: the output spike occurs while/after the PSP is above the
    # threshold, within the burst window.
    crossing = np.flatnonzero(g > threshold)
    assert crossing.size > 0
    spike_high = np.flatnonzero(spike > 0.5)
    assert spike_high.size > 0
    assert spike_high[0] >= crossing[0]

    # The buffered output is rail-to-rail (inverter restoration).
    assert spike.max() > 0.95
    assert spike.min() < 0.05

    # RC time constant realises the software tau (Table I tau = 4 steps):
    # R*C = 46.2 ns over 10 ns steps.
    assert "46.2 ns" in result.text
