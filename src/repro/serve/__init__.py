"""Streaming stateful inference and micro-batching model serving.

This package turns the repo from an offline batch runner into a resident
model server — the serving analogue of SpikeHard's always-on accelerator:
a trained :class:`~repro.core.network.SpikingNetwork` stays loaded while
live spike streams from many clients flow through it in chunks.

The pieces, bottom-up:

* :class:`~repro.core.engine.StreamState` (in :mod:`repro.core`) — the
  per-stream carry state that makes chunked inference bitwise-equal to a
  one-shot run;
* :mod:`repro.serve.session` — a :class:`Session` owns one client's
  stream state and bookkeeping on a served model;
* :mod:`repro.serve.batcher` — the :class:`MicroBatcher` coalesces
  pending chunks from many sessions into one fused batch per tick under
  ``max_batch`` / ``max_wait_ms`` caps, FIFO-fair, with a bounded queue
  that rejects (:class:`~repro.common.errors.CapacityError`) when full;
* :mod:`repro.serve.server` — the :class:`ModelServer` front-end:
  sessions, ticks (gather states -> one padded fused run -> scatter),
  offline bulk evaluation (optionally sharded over a
  :class:`~repro.runtime.pool.WorkerPool`);
* :mod:`repro.serve.registry` — a versioned on-disk
  :class:`ModelRegistry` of checkpoints *and hardware profiles* the
  server cold-starts from;
* :mod:`repro.serve.loadgen` — a synthetic open-loop arrival process and
  latency/throughput accounting (``benchmarks/bench_serving.py`` /
  ``make bench-serving``), plus the multi-tenant mix
  (:func:`open_loop_fleet`) that measures a fleet;
* :mod:`repro.serve.fleet` — the :class:`Fleet` front door: N
  ``ModelServer`` replicas, session-sticky least-loaded routing,
  per-tenant token-bucket quotas (:class:`TenantQuota`), and weighted
  canary rollout between registry generations with generation-fenced
  drains (``docs/fleet.md``).

The server can also put the paper's *hardware* in the loop
(``hardware=`` / ``from_registry(..., hardware_profile=...)``): ticks
then stream the crossbars' achieved (quantized + variation-noisy)
weights through the same fused path, ``shadow=True`` canaries a hardware
realization against the ideal model on live traffic, and
``evaluate_variation`` runs Fig. 8-scale sweeps over a
:class:`~repro.runtime.pool.WorkerPool` as a serving workload.

See ``docs/serving.md`` and ``docs/hardware.md`` for the architecture
and measured numbers.
"""

from .batcher import MicroBatcher, StreamRequest, Ticket
from .fleet import Fleet, TenantQuota
from .loadgen import (
    FleetReport,
    ServingReport,
    TenantLoad,
    open_loop,
    open_loop_fleet,
)
from .registry import ModelRegistry
from .server import ModelServer
from .session import Session
from .workloads import (
    DVSWorkload,
    GlyphWorkload,
    SpeechWorkload,
    SyntheticWorkload,
    Workload,
    WorkloadMix,
    make_workload,
)

__all__ = [
    "Fleet",
    "FleetReport",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ServingReport",
    "Session",
    "StreamRequest",
    "TenantLoad",
    "TenantQuota",
    "Ticket",
    "open_loop",
    "open_loop_fleet",
    "Workload",
    "SyntheticWorkload",
    "SpeechWorkload",
    "DVSWorkload",
    "GlyphWorkload",
    "WorkloadMix",
    "make_workload",
]
