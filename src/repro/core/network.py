"""The feedforward spiking network (paper Fig. 2/3).

A :class:`SpikingNetwork` is a stack of :class:`~repro.core.layers.SpikingLinear`
layers.  Two execution engines produce identical dynamics:

* ``engine="step"`` — the *step-wise reference path*: at each step ``t``
  the input spikes propagate through every layer (eq. 9 couples layer
  ``l``'s synapse filter to layer ``l-1``'s output *at the same step*),
  then ``t`` advances.  This is the literal unfolding of the paper's
  Fig. 2 — easy to audit, and what :meth:`SpikingNetwork.step` exposes for
  closed-loop use — but it pays one small matmul and several Python
  dispatches per layer per step.

* ``engine="fused"`` (the default) — the vectorized engine in
  :mod:`repro.core.engine`: because the stack is feedforward and causal,
  the loop nest is reordered layer-major, the synapse filter becomes an
  in-place exponential scan over ``(batch, T, n)`` buffers, and the
  crossbar product collapses to one batched matmul per layer.  Spikes,
  membrane traces and BPTT gradients match the reference to tolerance
  (``tests/unit/test_engine.py``); throughput is several times higher
  (``docs/performance.md``).

Both engines support ``precision="float32"|"float64"``.

A recorded run (:class:`RunRecord`) captures, per layer, the synapse-filter
traces ``k``, membrane values ``v`` and output spikes — everything backward
passes and the analysis/plotting code need.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .engine import fused_run, resolve_precision
from .layers import LayerStepRecord, SpikingLinear
from .neurons import NeuronParameters
from .surrogate import SurrogateGradient

__all__ = ["SpikingNetwork", "RunRecord"]


class RunRecord:
    """Everything captured from one recorded forward run.

    Memory layout: every tensor is a C-contiguous array indexed
    ``[batch, t, neuron]`` — batch-major, time second, channel last — so a
    single time step ``tensor[:, t, :]`` is a strided ``(batch, n)`` slice
    (what the step-wise loops touch) while a whole trace flattens to
    ``(batch*T, n)`` without a copy (what the fused engine's batched
    matmuls consume).  Per layer the record holds ``k`` (synapse-filter
    trace, ``(batch, T, n_in)``, ``None`` for hard-reset layers), ``v``
    (membrane values, pre-reset for HR) and ``spikes`` (both
    ``(batch, T, n_out)``).  The dtype is whatever precision the run used;
    both engines produce the same layout, so BPTT and the analysis code
    never need to know which engine recorded it.

    Attributes
    ----------
    inputs:
        The network input spikes, shape (batch, T, n_input).
    layers:
        One :class:`~repro.core.layers.LayerStepRecord` per layer.
    """

    def __init__(self, inputs: np.ndarray, layers: list[LayerStepRecord]):
        self.inputs = inputs
        self.layers = layers

    @property
    def outputs(self) -> np.ndarray:
        """Output spikes of the last layer, shape (batch, T, n_out)."""
        return self.layers[-1].spikes

    def layer_input(self, index: int) -> np.ndarray:
        """Spikes entering layer ``index`` (network input for index 0)."""
        if index == 0:
            return self.inputs
        return self.layers[index - 1].spikes


class SpikingNetwork:
    """A feedforward stack of spiking layers.

    Parameters
    ----------
    sizes:
        Layer widths including the input, e.g. ``(700, 400, 400, 20)``.
    params:
        Neuron hyper-parameters shared by all layers (Table I defaults).
    neuron_kind:
        ``"adaptive"`` or ``"hard_reset"`` for every layer.
    surrogate:
        Surrogate gradient attached to every layer.
    rng:
        Seed / RandomState; each layer's init gets an independent child
        stream.
    """

    def __init__(self, sizes: tuple[int, ...] | list[int],
                 params: NeuronParameters | None = None,
                 neuron_kind: str = "adaptive",
                 surrogate: SurrogateGradient | None = None,
                 rng: RandomState | int | None = None):
        sizes = tuple(int(s) for s in sizes)
        if len(sizes) < 2:
            raise ValueError("a network needs at least an input and one layer")
        root = as_random_state(rng)
        self.sizes = sizes
        self.params = params or NeuronParameters()
        self.neuron_kind = neuron_kind
        self.layers = [
            SpikingLinear(
                sizes[i], sizes[i + 1], params=self.params,
                neuron_kind=neuron_kind, surrogate=surrogate,
                rng=root.child(f"layer{i}"), name=f"layer{i}",
            )
            for i in range(len(sizes) - 1)
        ]

    # -- forward -------------------------------------------------------------
    def reset_state(self, batch_size: int, dtype=np.float64) -> None:
        for layer in self.layers:
            layer.reset_state(batch_size, dtype=dtype)

    def step(self, x: np.ndarray) -> np.ndarray:
        """Propagate one time step through all layers; returns output spikes."""
        spikes = x
        for layer in self.layers:
            spikes, _ = layer.step(spikes)
        return spikes

    def run(self, inputs: np.ndarray, record: bool = False,
            dtype=np.float64, engine: str = "fused",
            precision: str | None = None,
            workspace=None) -> tuple[np.ndarray, RunRecord | None]:
        """Run a batch of spike sequences through the network.

        Parameters
        ----------
        inputs:
            Spike array of shape (batch, T, n_input); values may exceed 1
            (event counts) — the filters are linear.
        record:
            Capture per-layer traces for BPTT / analysis.
        dtype:
            Array dtype (kept for backwards compatibility; prefer
            ``precision``).
        engine:
            ``"fused"`` (default, :mod:`repro.core.engine`) or ``"step"``
            (the per-step reference loop).  Outputs agree to tolerance.
        precision:
            ``"float32"`` or ``"float64"``; overrides ``dtype`` when given.
        workspace:
            Optional :class:`~repro.runtime.workspace.Workspace` the fused
            engine checks its large buffers out of (identical results).
            The returned tensors then belong to that workspace's owner —
            only pass one from code that recycles them, like the
            :class:`~repro.core.trainer.Trainer`.  Ignored by
            ``engine="step"``.

        Returns
        -------
        (outputs, record):
            ``outputs`` has shape (batch, T, n_output); ``record`` is a
            :class:`RunRecord` or ``None``.
        """
        if engine not in ("fused", "step"):
            raise ValueError(f"engine must be 'fused' or 'step', got {engine!r}")
        resolved = resolve_precision(precision)
        if resolved is not None:
            dtype = resolved
        inputs = np.asarray(inputs, dtype=dtype)
        if inputs.ndim != 3:
            raise ShapeError(f"expected (batch, T, n_in), got {inputs.shape}")
        if inputs.shape[2] != self.sizes[0]:
            raise ShapeError(
                f"expected {self.sizes[0]} input channels, got {inputs.shape[2]}"
            )
        if engine == "fused":
            return fused_run(self, inputs, record=record, ws=workspace)
        batch, steps, _ = inputs.shape
        self.reset_state(batch, dtype=dtype)

        spike_buffers = [
            np.zeros((batch, steps, layer.n_out), dtype=dtype)
            for layer in self.layers
        ]
        v_buffers = None
        k_buffers = None
        if record:
            v_buffers = [np.zeros((batch, steps, layer.n_out), dtype=dtype)
                         for layer in self.layers]
            k_buffers = [
                np.zeros((batch, steps, layer.n_in), dtype=dtype)
                if layer.neuron_kind == "adaptive" else None
                for layer in self.layers
            ]

        for t in range(steps):
            spikes = inputs[:, t, :]
            for index, layer in enumerate(self.layers):
                spikes, v = layer.step(spikes)
                spike_buffers[index][:, t, :] = spikes
                if record:
                    v_buffers[index][:, t, :] = v
                    if k_buffers[index] is not None:
                        k_buffers[index][:, t, :] = layer.k

        outputs = spike_buffers[-1]
        run_record = None
        if record:
            layer_records = [
                LayerStepRecord(k=k_buffers[i], v=v_buffers[i],
                                spikes=spike_buffers[i])
                for i in range(len(self.layers))
            ]
            run_record = RunRecord(inputs=inputs, layers=layer_records)
        return outputs, run_record

    # -- parameters ------------------------------------------------------------
    @property
    def weights(self) -> list[np.ndarray]:
        """The per-layer weight matrices (live references, not copies)."""
        return [layer.weight for layer in self.layers]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Replace all weights (shapes must match)."""
        if len(weights) != len(self.layers):
            raise ShapeError(
                f"expected {len(self.layers)} weight arrays, got {len(weights)}"
            )
        for layer, w in zip(self.layers, weights):
            w = np.asarray(w, dtype=np.float64)
            if w.shape != layer.weight.shape:
                raise ShapeError(
                    f"{layer.name}: weight shape {w.shape} != {layer.weight.shape}"
                )
            layer.weight = w.copy()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Named parameter arrays for serialization."""
        return {f"layers.{i}.weight": layer.weight.copy()
                for i, layer in enumerate(self.layers)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        weights = []
        for i in range(len(self.layers)):
            key = f"layers.{i}.weight"
            if key not in state:
                raise ShapeError(f"missing parameter {key!r}")
            weights.append(state[key])
        self.set_weights(weights)

    def with_neuron_kind(self, neuron_kind: str) -> "SpikingNetwork":
        """A new network with identical (shared) weights but other dynamics.

        Implements the paper's Table II 'HR' swap: evaluate the trained
        weights under hard-reset neurons.
        """
        clone = SpikingNetwork(
            self.sizes, params=self.params, neuron_kind=neuron_kind, rng=0,
        )
        for ours, theirs in zip(self.layers, clone.layers):
            theirs.weight = ours.weight  # intentional sharing
        return clone

    def count_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(w.size for w in self.weights))

    def __repr__(self) -> str:
        arch = "-".join(str(s) for s in self.sizes)
        return f"SpikingNetwork({arch}, kind={self.neuron_kind!r})"
