"""The single run-table artifact every benchmark row lands in.

One scenario-harness invocation (:mod:`repro.experiments.harness`)
appends one row per executed run to a :class:`RunTable` and writes it as
``run_table.csv`` — the muBench replication shape: a factor grid,
repetitions, and *one* table that every downstream artifact
(``BENCH_throughput.json``, ``BENCH_serving.json``, ``BENCH_aware.json``)
is regenerated from.  A reviewer diffs the table, not fourteen scripts.

The column set is fixed (:data:`RUN_TABLE_COLUMNS`) and documented in
``docs/experiments.md``.  Identity columns (which grid cell a row is)
come first, measurement columns follow; cells that do not apply to a
row's kind are empty.  Rendering is deterministic: ``repr`` for floats
(round-trips exactly through :meth:`RunTable.read_csv`), no timestamps,
no environment capture — two runs of the same scenario with the same
seeds must produce byte-identical CSV text.
"""

from __future__ import annotations

from pathlib import Path

from .errors import ExperimentError

__all__ = ["RUN_TABLE_COLUMNS", "RunTable"]

#: Identity (grid-cell) columns — every row fills all of these.
ID_COLUMNS = (
    "run_id",        # unique slug: scenario/engine-precision-...-rN
    "scenario",      # scenario name the row was expanded from
    "kind",          # forward | backward | train_step | inference |
                     # variation | serving | chaos
    "engine",        # fused | step
    "precision",     # float64 | float32
    "workers",       # worker-pool size (0 = serial)
    "hardware",      # ideal | hw<bits>b<var%> | shadow<bits>b<var%>
    "hw_bits",       # crossbar weight resolution (empty when ideal)
    "hw_variation",  # programming-variation sigma (empty when ideal)
    "workload",      # serving rows: synthetic | speech | dvs | glyph | a+b
    "load",          # serving rows: load-point id (light/heavy/...)
    "tenant",        # fleet rows: tenant id of a per-tenant SLO row
                     # (empty on the cell's fleet-wide aggregate row)
    "rate_rps",      # serving rows: offered Poisson rate
    "repetition",    # 0-based repetition index
    "seed",          # per-run derived seed (int)
)

#: Measurement columns — filled per row kind, empty otherwise.
MEASUREMENT_COLUMNS = (
    "rounds",          # timed kinds: measurement repetitions
    "requests",        # serving: chunks offered
    "completed",       # serving: chunks answered
    "rejected",        # serving: chunks refused by the bounded queue
    "ticks",           # serving: server ticks executed
    "duration_s",      # serving: virtual-clock run duration
    "throughput_rps",  # serving: completed / duration
    "mean_batch",      # serving: mean coalesced batch size
    "steps_per_s",     # serving: simulated time steps per second
    "min_ms",          # timed kinds: fastest call
    "mean_ms",         # timed kinds: mean call; serving: mean latency
    "max_ms",          # timed kinds: slowest call; serving: max latency
    "p50_ms",          # serving: median arrival-to-answer latency
    "p95_ms",          # serving: tail latency
    "p99_ms",          # serving: extreme-tail latency
    "accuracy",        # variation: mean accuracy over device seeds
    "accuracy_std",    # variation: std over device seeds
    "divergence",      # serving (shadow): mean ideal-vs-hardware diff
    "energy_j",        # modeled crossbar+neuron energy of the work done
    # Robustness columns (serving/chaos rows; clean runs fill the
    # zero/1.0 defaults so the schema stays uniform):
    "faults_injected",   # fault-plan firings observed during the run
    "requests_retried",  # chunks completed via the isolation retry path
    "requests_expired",  # chunks shed past their deadline (TTL)
    "requests_failed",   # chunks whose ticket resolved with an error
    "recovery_p99_ms",   # p99 latency of the retried chunks only
    "availability",      # completed / (completed+failed+expired)
    # Telemetry columns (serving/chaos rows; see docs/observability.md):
    "queue_wait_p95_ms",    # p95 submit-to-tick wait (virtual clock)
    "tick_compute_p95_ms",  # p95 measured per-tick compute
    # Fleet columns (fleet rows; see docs/fleet.md):
    "replicas",        # fleet aggregate: primary replica count
    "canary_weight",   # fleet aggregate: new-session canary fraction
    "quota_rejected",  # admission-control rejections (tenant rows: own;
                       # aggregate row: fleet-wide total)
    "canary_share",    # fleet aggregate: completed chunks served by the
                       # canary generation / all completed
    "misroutes",       # fleet aggregate: route-guard corrections
)

RUN_TABLE_COLUMNS = ID_COLUMNS + MEASUREMENT_COLUMNS


def _render_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):  # guard: bools are ints in python
        return str(int(value))
    if isinstance(value, float):
        # float() flattens numpy scalars (np.float64 is a float subclass
        # whose repr under numpy 2.x is 'np.float64(...)', which would
        # corrupt the cell); repr of a builtin float round-trips exactly.
        return repr(float(value))
    text = str(value)
    if any(ch in text for ch in ",\n\r\""):
        raise ExperimentError(
            f"run-table cell {text!r} contains a CSV delimiter; "
            "use plain slugs in identity columns")
    return text


#: Columns whose non-empty cells must parse as numbers — a cell that
#: comes back as a string here means the table is corrupted, and the
#: read must fail loudly instead of quietly emitting wrong JSON.
_NUMERIC_COLUMNS = frozenset(MEASUREMENT_COLUMNS) | {
    "workers", "hw_bits", "hw_variation", "rate_rps", "repetition", "seed",
}


def _parse_cell(text: str, column: str):
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        if column in _NUMERIC_COLUMNS:
            raise ExperimentError(
                f"run-table cell {column}={text!r} must be numeric but "
                "does not parse as a number — the table is corrupted")
        return text


class RunTable:
    """An append-only table of run rows with a fixed column set."""

    columns = RUN_TABLE_COLUMNS

    def __init__(self, rows: list[dict] | None = None):
        self.rows: list[dict] = []
        for row in rows or []:
            self.append(**row)

    def __len__(self) -> int:
        return len(self.rows)

    def append(self, **row) -> dict:
        """Validate and append one row; returns the normalized row dict."""
        unknown = sorted(set(row) - set(self.columns))
        if unknown:
            raise ExperimentError(
                f"unknown run-table column(s) {unknown}; "
                f"the schema is fixed — see repro.common.runtable")
        run_id = row.get("run_id")
        if not run_id:
            raise ExperimentError("every run-table row needs a run_id")
        if any(existing["run_id"] == run_id for existing in self.rows):
            raise ExperimentError(f"duplicate run_id {run_id!r} in run table")
        normalized = {column: row.get(column) for column in self.columns}
        self.rows.append(normalized)
        return normalized

    def extend(self, rows) -> None:
        for row in rows:
            self.append(**row)

    def by_kind(self, kind: str) -> list[dict]:
        return [row for row in self.rows if row["kind"] == kind]

    # -- CSV -----------------------------------------------------------------
    def render_csv(self) -> str:
        """Deterministic CSV text (header + one line per row)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(_render_cell(row[c]) for c in self.columns))
        return "\n".join(lines) + "\n"

    def write_csv(self, path) -> Path:
        path = Path(path)
        path.write_text(self.render_csv(), encoding="utf-8")
        return path

    @classmethod
    def from_csv_text(cls, text: str) -> "RunTable":
        lines = [line for line in text.splitlines() if line]
        if not lines:
            raise ExperimentError("empty run table")
        header = tuple(lines[0].split(","))
        if header != cls.columns:
            raise ExperimentError(
                "run-table header does not match the fixed schema "
                f"(got {len(header)} columns, expected {len(cls.columns)}; "
                "was the file written by an older harness?)")
        table = cls()
        for line in lines[1:]:
            cells = line.split(",")
            if len(cells) != len(cls.columns):
                raise ExperimentError(
                    f"run-table row has {len(cells)} cells, expected "
                    f"{len(cls.columns)}: {line[:60]}...")
            table.append(**{
                column: _parse_cell(cell, column)
                for column, cell in zip(cls.columns, cells)
                if cell != ""
            })
        return table

    @classmethod
    def read_csv(cls, path) -> "RunTable":
        return cls.from_csv_text(Path(path).read_text(encoding="utf-8"))
