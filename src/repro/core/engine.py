"""Fused, vectorized simulation engine for the core forward/backward loop.

The step-wise reference path (:meth:`SpikingNetwork.run` with
``engine="step"``) advances the whole stack one time step at a time,
dispatching through ``SpikingLinear.step`` -> ``neuron.step`` Python calls
and performing one small ``(batch, n_in) @ (n_in, n_out)`` matmul per layer
per step.  For the typical benchmark shapes (batch 32, T 100) that is
hundreds of tiny BLAS calls plus thousands of Python-level dispatches —
the dominant cost of every experiment in the repo.

This module removes that overhead by restructuring the loop nest.  The
network is feedforward and layer ``l`` at step ``t`` depends only on layer
``l-1`` at steps ``<= t`` (eq. 9 couples same-step outputs, never future
ones), so the time-major loop can be legally reordered layer-major: run
layer 0 over the entire sequence, then layer 1, and so on.  Per layer the
work then splits into

* **linear scans** — the synapse filter ``k[t] = alpha k[t-1] + x[t]``
  (eq. 9) and its adjoint are first-order recurrences evaluated in place
  over a preallocated ``(batch, T, n)`` buffer (:func:`exp_scan`,
  :func:`exp_scan_reverse`); each step is a fused elementwise update on a
  buffer slice, with no per-step allocation;
* **one batched matmul** — the crossbar product ``g = k W^T`` (eq. 7) for
  *all* time steps at once: ``(batch*T, n_in) @ (n_in, n_out)``, which is
  where BLAS actually wins;
* **a thin nonlinear scan** — the spike/threshold recurrence (eqs. 6, 8,
  10) is inherently sequential (the spike at ``t`` feeds the reset filter
  at ``t+1``) but involves only elementwise work on ``(batch, n_out)``
  slices, again over preallocated buffers.

The backward pass (:func:`fused_backward`) applies the same split to the
BPTT adjoints of :mod:`repro.core.backprop`: the sequential part is the
elementwise ``delta_v`` recurrence; the weight gradient collapses to a
single ``tensordot`` over ``(batch, T)`` and the input gradient to one
batched matmul followed by a reverse scan.

Precision: every entry point accepts ``precision="float32"|"float64"``
(:func:`resolve_precision`); float32 halves memory traffic and is
typically faster, at the cost of spike-level equivalence with the float64
reference (near-threshold membrane values may round across ``v_th``).

Workspace reuse: every entry point also accepts an optional
``ws``/``workspace`` — a :class:`repro.runtime.workspace.Workspace` — from
which the large ``(batch, T, n)`` buffers are checked out instead of
allocated.  The arithmetic is identical either way (buffers are
``np.empty`` equivalents); the caller (the :class:`~repro.core.trainer.
Trainer`, or a pool worker) recycles the recorded tensors once the step is
done, so steady-state training reallocates nothing.  ``ws=None`` (the
default) keeps the original allocate-per-call behavior.

Equivalence with the step-wise reference (same spikes, membrane traces and
gradients to tolerance) is tested in ``tests/unit/test_engine.py``; the
speedup is measured by ``benchmarks/bench_throughput.py`` and recorded in
``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError

try:  # scipy is optional; the engine falls back to dense BLAS without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is present in CI
    _sparse = None

__all__ = [
    "PRECISIONS",
    "resolve_precision",
    "exp_scan",
    "exp_scan_reverse",
    "fused_layer_forward",
    "fused_run",
    "fused_backward",
    "StreamState",
    "run_streaming",
]

#: Supported precision names and their dtypes.
PRECISIONS = {"float32": np.float32, "float64": np.float64}

#: Use the CSR product when the spike density is below this and the input
#: is large enough for the conversion to pay off.
SPARSE_DENSITY_THRESHOLD = 0.2
_SPARSE_MIN_SIZE = 1 << 14


def resolve_precision(precision) -> np.dtype | None:
    """Map ``"float32"``/``"float64"`` (or a dtype-like) to a numpy dtype.

    ``None`` passes through (meaning "caller's default").
    """
    if precision is None:
        return None
    if isinstance(precision, str):
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {sorted(PRECISIONS)}, "
                f"got {precision!r}"
            )
        return np.dtype(PRECISIONS[precision])
    return np.dtype(precision)


# -- scan kernels -----------------------------------------------------------

def exp_scan(xs: np.ndarray, decay: float, out: np.ndarray | None = None,
             carry: np.ndarray | None = None) -> np.ndarray:
    """Causal first-order scan ``y[t] = decay*y[t-1] + x[t]`` along axis 1.

    ``xs`` has shape ``(batch, T, n)``.  The scan is evaluated in place
    over ``out`` (allocated once when omitted); each step is two fused
    elementwise ops on a ``(batch, n)`` slice.  ``out`` may alias ``xs``.

    ``carry`` is the scan value *preceding* ``xs[:, 0]`` — the final
    scanned value of the previous chunk of a split sequence.  With it the
    first step performs exactly the same two ops as every interior step
    (``y[0] = decay*carry + x[0]``), so scanning a sequence in chunks and
    threading the carry is bitwise-equal to one continuous scan.  ``None``
    (the default) keeps the original behavior ``y[0] = x[0]``.
    """
    xs = np.asarray(xs)
    if out is None:
        out = np.empty_like(xs)
    steps = xs.shape[1]
    if steps == 0:
        return out
    if out is xs:
        scratch = np.empty(xs.shape[::2], dtype=xs.dtype)  # (batch, n)
        if carry is not None:
            np.multiply(carry, decay, out=scratch)
            out[:, 0] += scratch
        for t in range(1, steps):
            np.multiply(out[:, t - 1], decay, out=scratch)
            out[:, t] += scratch
    else:
        out[:, 0] = xs[:, 0]
        if carry is not None:
            scratch = np.empty(xs.shape[::2], dtype=xs.dtype)
            np.multiply(carry, decay, out=scratch)
            out[:, 0] += scratch
        for t in range(1, steps):
            cur = out[:, t]
            np.multiply(out[:, t - 1], decay, out=cur)
            cur += xs[:, t]
    return out


def _ws_empty(ws, shape, dtype) -> np.ndarray:
    """``np.empty`` routed through a workspace when one is supplied."""
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.empty(shape, dtype)


def _ws_release(ws, *arrays) -> None:
    if ws is not None:
        ws.release(*arrays)


def _as_csr(flat: np.ndarray, ws=None):
    """Cheap CSR view of a sparse ``(m, n)`` spike matrix, or ``None``.

    ``scipy.sparse.csr_matrix(dense)`` costs as much as the GEMM it is
    meant to replace, so the index structure is built directly: one
    ``flatnonzero`` scan (indices come out sorted, i.e. canonical CSR
    order) plus a ``searchsorted`` for the row pointers.  Returns ``None``
    when scipy is missing, the matrix is small, or the density is too high
    for the sparse product to win.  ``ws`` serves the constant
    row-boundary scratch from its cache.
    """
    if _sparse is None or flat.size < _SPARSE_MIN_SIZE:
        return None
    # Explicit bool compare first: flatnonzero on a float array pays an
    # extra full-size temporary and runs ~3x slower.
    raveled = np.ascontiguousarray(flat).reshape(-1)
    idx = np.flatnonzero(raveled != 0)
    if idx.size > SPARSE_DENSITY_THRESHOLD * flat.size:
        return None
    return _build_csr(flat, raveled, idx, ws)


def _build_csr(flat: np.ndarray, raveled: np.ndarray, idx: np.ndarray, ws):
    """Assemble the canonical CSR from a precomputed nonzero index scan."""
    m, n = flat.shape
    bounds = (ws.row_bounds(m, n) if ws is not None
              else np.arange(0, (m + 1) * n, n))
    indptr = np.searchsorted(idx, bounds)
    return _sparse.csr_matrix(
        (raveled[idx], idx % n, indptr), shape=(m, n)
    )


def _as_csr_always(flat: np.ndarray, ws=None):
    """CSR of a spike matrix regardless of size or density (or ``None``
    without scipy).

    The streaming path (:func:`run_streaming`) uses this instead of the
    :func:`_as_csr` probe: the CSR product computes every output row as an
    independent sum over that row's nonzeros in index order, so the result
    for one sample/step is bitwise-independent of which other rows share
    the matrix — the property that makes arbitrary chunking and the
    serving micro-batcher's session gathering exact.  The dense GEMM has
    no such guarantee (BLAS picks different kernels for different row
    counts), which is why the probe's economics do not apply here.
    """
    if _sparse is None:
        return None
    raveled = np.ascontiguousarray(flat).reshape(-1)
    idx = np.flatnonzero(raveled != 0)
    return _build_csr(flat, raveled, idx, ws)


#: Default for ``spike_matmul``'s ``csr``: "not computed yet, decide here".
_AUTO_CSR = object()


def spike_matmul(flat_x: np.ndarray, w_t: np.ndarray, csr=_AUTO_CSR,
                 out: np.ndarray | None = None) -> np.ndarray:
    """``flat_x @ w_t`` exploiting spike sparsity when profitable.

    ``flat_x`` is a ``(batch*T, n_in)`` spike matrix (typically a few
    percent nonzero), ``w_t`` a dense ``(n_in, n_out)`` weight transpose.
    Falls back to the dense BLAS product when the input is dense or small.
    ``csr`` short-circuits the conversion: pass a CSR the caller already
    holds for ``flat_x``, or ``None`` to assert the input is known dense
    (skipping the conversion probe entirely).  ``out`` receives the dense
    product in place (the sparse product allocates its own result and
    ignores ``out``).
    """
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x)
    if csr is None:
        if out is not None:
            return np.matmul(flat_x, w_t, out=out)
        return flat_x @ w_t
    return csr @ w_t


def spike_outer(flat_dv: np.ndarray, flat_x: np.ndarray,
                csr=_AUTO_CSR) -> np.ndarray:
    """``flat_dv.T @ flat_x`` — the BPTT weight gradient contraction.

    ``flat_dv`` is the dense ``(batch*T, n_out)`` membrane adjoint and
    ``flat_x`` the ``(batch*T, n_in)`` presynaptic spikes; when the spikes
    are sparse the contraction runs as a CSC-dense product over the
    nonzeros only.  ``csr`` follows the :func:`spike_matmul` convention:
    a conversion the forward pass already paid for, ``None`` for "probed
    and dense" (no re-probe), or the default to probe here.
    """
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x)
    if csr is None:
        return flat_dv.T @ flat_x
    return np.ascontiguousarray((csr.T @ flat_dv).T)


def exp_scan_reverse(xs: np.ndarray, decay: float,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Anti-causal scan ``a[t] = x[t] + decay*a[t+1]`` along axis 1.

    The adjoint of :func:`exp_scan`.  Supports ``out is xs`` (in-place)
    for callers that want the adjoint without a second buffer;
    :func:`fused_backward` itself writes into a distinct buffer (the
    truncated mode still needs the pre-scan ``delta_v`` afterwards, and
    workspace reuse makes the second buffer free in steady state).
    """
    xs = np.asarray(xs)
    if out is None:
        out = np.empty_like(xs)
    steps = xs.shape[1]
    if steps == 0:
        return out
    if out is not xs:
        out[:, steps - 1] = xs[:, steps - 1]
    scratch = np.empty(xs.shape[::2], dtype=xs.dtype)  # (batch, n)
    for t in range(steps - 2, -1, -1):
        np.multiply(out[:, t + 1], decay, out=scratch)
        if out is xs:
            out[:, t] += scratch
        else:
            np.add(xs[:, t], scratch, out=out[:, t])
    return out


# -- forward ----------------------------------------------------------------

def _resolve_weight_override(layer, weight):
    """Validate a per-layer weight override (``None`` = layer's own)."""
    if weight is None:
        return None
    weight = np.asarray(weight)
    if weight.shape != layer.weight.shape:
        raise ShapeError(
            f"{layer.name}: weight override shape {weight.shape} != "
            f"{layer.weight.shape}")
    return weight


def fused_layer_forward(layer, xs: np.ndarray, need_k: bool = True,
                        _csr=_AUTO_CSR, ws=None, weight=None
                        ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Run one :class:`~repro.core.layers.SpikingLinear` over a whole sequence.

    Parameters
    ----------
    layer:
        The layer to run (state is reinitialised, as in ``layer.run``).
    xs:
        Input spikes, shape ``(batch, T, n_in)``; dtype selects precision.
    need_k:
        Materialise the full synapse-filter trace ``k`` for recording.
        The fused math never needs it (the filter is applied *after* the
        crossbar product — the two commute), so pure inference skips the
        ``(batch, T, n_in)`` buffer entirely.
    ws:
        Optional :class:`~repro.runtime.workspace.Workspace` serving the
        large buffers (identical results; the caller recycles them).
    weight:
        Optional ``(n_out, n_in)`` array substituting the layer's weight
        matrix in the crossbar product (the layer's own parameters are
        untouched) — the weight-override hook hardware-aware training and
        hardware-in-the-loop inference ride.

    Returns
    -------
    (spikes, k, v):
        ``spikes`` and ``v`` have shape ``(batch, T, n_out)``; ``k`` is the
        synapse-filter trace ``(batch, T, n_in)`` for adaptive layers when
        ``need_k`` (else ``None``), and always ``None`` for hard-reset
        layers.  These are exactly the tensors a
        :class:`~repro.core.layers.LayerStepRecord` holds, so recording is
        free.  The layer/neuron incremental state is left at the final
        step's values, matching the step-wise path.
    """
    xs = np.asarray(xs)
    if xs.ndim != 3:
        raise ShapeError(f"{layer.name}: expected (batch, T, n_in), "
                         f"got {xs.shape}")
    if xs.shape[2] != layer.n_in:
        raise ShapeError(f"{layer.name}: expected {layer.n_in} inputs, "
                         f"got {xs.shape[2]}")
    weight = _resolve_weight_override(layer, weight)
    if layer.neuron_kind == "adaptive":
        return _fused_adaptive_forward(layer, xs, need_k, _csr, ws, weight)
    return _fused_hard_reset_forward(layer, xs, _csr, ws, weight)


def _layer_gv(layer_weight, xs, dtype, csr, ws, gain: float = 1.0):
    """The crossbar product for every step at once: ``(batch, T, n_out)``.

    Dense inputs multiply straight into a workspace buffer; sparse inputs
    go through the CSR product (which allocates its own result — foreign
    to the workspace, which release() tolerates).  ``csr`` follows the
    :func:`spike_matmul` convention: a ready conversion, ``None`` for
    "probed and dense" (no re-probe), or ``_AUTO_CSR`` to probe here.
    """
    batch, steps, n_in = xs.shape
    n_out = layer_weight.shape[0]
    w_t = _ws_empty(ws, (n_in, n_out), dtype)
    np.copyto(w_t, layer_weight.T)
    if gain != 1.0:
        w_t *= dtype.type(gain)
    flat_x = xs.reshape(batch * steps, n_in)
    if csr is _AUTO_CSR:
        csr = _as_csr(flat_x, ws)
    if csr is None:
        gv = _ws_empty(ws, (batch, steps, n_out), dtype)
        spike_matmul(flat_x, w_t, csr=None,
                     out=gv.reshape(batch * steps, n_out))
    else:
        gv = np.ascontiguousarray(
            spike_matmul(flat_x, w_t, csr=csr)
        ).reshape(batch, steps, n_out)
    _ws_release(ws, w_t)
    return gv


def _fused_adaptive_forward(layer, xs, need_k, csr=_AUTO_CSR, ws=None,
                            weight=None):
    """Adaptive-threshold layer: sparse matmul -> scan -> threshold scan.

    The synapse filter (eq. 9) and the crossbar product (eq. 7) are both
    linear, so ``filter(x) @ W^T == filter(x @ W^T)``.  Evaluating the
    matmul first keeps its input the *raw spikes* — a few-percent-dense
    0/1 matrix that :func:`spike_matmul` contracts over nonzeros only —
    and moves the scan from the wide ``n_in`` axis to the narrow ``n_out``
    axis.
    """
    dtype = xs.dtype
    batch, steps, n_in = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    alpha = layer.alpha
    theta = neuron.params.theta
    v_th = neuron.params.v_th
    beta = neuron.beta_r
    if steps == 0:
        layer.reset_state(batch, dtype=dtype)
        empty = np.zeros((batch, 0, n_out), dtype=dtype)
        k = np.zeros((batch, 0, n_in), dtype=dtype) if need_k else None
        return empty, k, empty.copy()

    # Crossbar product of the raw spikes for every step at once, then the
    # synapse filter as an in-place scan over (batch, T, n_out).  ``gv``
    # starts life as g[t] and is rewritten to v[t] = g[t] - theta*h[t].
    gv = _layer_gv(layer.weight if weight is None else weight,
                   xs, dtype, csr, ws)
    exp_scan(gv, alpha, out=gv)

    if need_k:
        k = exp_scan(xs, alpha, out=_ws_empty(ws, xs.shape, dtype))
    else:
        k = None

    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    h = np.zeros((batch, n_out), dtype=dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    o_prev = None
    for t in range(steps):
        # h[t] = beta*h[t-1] + O[t-1]   (eq. 8)
        h *= beta
        if o_prev is not None:
            h += o_prev
        v_t = gv[:, t]
        np.multiply(h, theta, out=scratch)
        v_t -= scratch                    # v[t] = g[t] - theta*h[t] (eq. 6)
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th            # O[t] = U(v[t] - Vth) (eq. 10/11)
        o_prev = o_t

    # Leave incremental state at the final step, like the step-wise path.
    if k is not None:
        layer.k = k[:, -1].copy()
    else:
        # Final filter state without the full trace: k[T-1] is the
        # alpha^(T-1-t)-weighted sum of the inputs.
        decay_powers = alpha ** np.arange(steps - 1, -1, -1, dtype=np.float64)
        layer.k = np.matmul(decay_powers.astype(dtype), xs)
    neuron.h = h
    neuron.last_output = spikes[:, -1].copy()
    _ws_release(ws, scratch)
    return spikes, k, gv


def _fused_hard_reset_forward(layer, xs, csr=_AUTO_CSR, ws=None,
                              weight=None):
    """Hard-reset layer: batched matmul -> leaky-integrate/reset scan."""
    dtype = xs.dtype
    batch, steps, n_in = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    alpha = neuron.alpha
    v_th = neuron.params.v_th
    if steps == 0:
        layer.reset_state(batch, dtype=dtype)
        empty = np.zeros((batch, 0, n_out), dtype=dtype)
        return empty, None, empty.copy()

    # Weighted input for every step at once (sparse over the raw spikes);
    # fold the discretisation gain into the weight so the scan below is
    # pure elementwise work.
    gv = _layer_gv(layer.weight if weight is None else weight,
                   xs, dtype, csr, ws, gain=float(neuron.input_gain))

    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    v_post = np.zeros((batch, n_out), dtype=dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    for t in range(steps):
        v_t = gv[:, t]
        np.multiply(v_post, alpha, out=scratch)
        v_t += scratch                    # v_pre[t] = alpha*v_post[t-1] + j[t]
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th
        np.subtract(1.0, o_t, out=scratch)
        np.multiply(v_t, scratch, out=v_post)   # hard reset (eq. 1b)

    # State parity with the step-wise path (whose reset_state zeroes the
    # unused synapse-filter buffer for hard-reset layers).
    layer.k = np.zeros((batch, n_in), dtype=dtype)
    neuron.v = v_post
    _ws_release(ws, scratch)
    return spikes, None, gv


def fused_run(network, inputs: np.ndarray, record: bool = False, ws=None,
              weights=None):
    """Fused forward pass over the whole stack; drop-in for the step loop.

    ``inputs`` must already be a validated ``(batch, T, n_input)`` array of
    the desired precision (``SpikingNetwork.run`` handles coercion).
    Returns ``(outputs, RunRecord | None)`` identical in structure to the
    step-wise path; the per-layer ``k``/``v``/``spikes`` tensors come for
    free because the engine materialises them anyway for the batched
    matmuls.  With a workspace and ``record=False`` the intermediate
    layers' tensors are recycled as soon as the next layer has consumed
    them (the returned outputs stay checked out for the caller).

    ``weights`` (optional, one ``(n_out, n_in)`` array per layer)
    substitutes the crossbar product's weight matrices without touching
    the network's parameters — the batch-mode twin of
    :func:`run_streaming`'s override.  Hardware-aware training runs its
    forward pass through the quantized(+noisy) weights this way; a
    following :func:`fused_backward` must be given the *same* list so the
    adjoint matmuls traverse the weights the forward actually used.
    """
    from .layers import LayerStepRecord   # local import: avoids a cycle
    from .network import RunRecord

    if weights is not None and len(weights) != len(network.layers):
        raise ShapeError(
            f"expected {len(network.layers)} weight overrides, "
            f"got {len(weights)}")
    x = inputs
    layer_records: list[LayerStepRecord] = []
    input_csrs = []
    spikes = inputs
    for index, layer in enumerate(network.layers):
        csr = _as_csr(x.reshape(-1, layer.n_in), ws)
        input_csrs.append(csr)
        spikes, k, v = fused_layer_forward(
            layer, x, need_k=record, _csr=csr, ws=ws,
            weight=None if weights is None else weights[index])
        if record:
            layer_records.append(LayerStepRecord(k=k, v=v, spikes=spikes))
        elif ws is not None:
            ws.release(v)
            if x is not inputs:
                ws.release(x)
        x = spikes
    if not record:
        return spikes, None
    run_record = RunRecord(inputs=inputs, layers=layer_records)
    # Stash the CSR conversions so a following fused_backward on this
    # record reuses them for its weight-gradient contractions.
    run_record._input_csrs = input_csrs
    return spikes, run_record


# -- streaming --------------------------------------------------------------

class StreamState:
    """Carryable per-layer state for chunked (streaming) inference.

    A stream processes a conceptually endless spike sequence in chunks:
    ``outputs, state = network.run_stream(chunk, state)`` consumes one
    ``(batch, T_chunk, n_in)`` chunk and advances the state so the next
    chunk continues exactly where this one stopped.  Splitting a sequence
    at arbitrary boundaries changes no arithmetic — the recurrences are
    first-order, so everything step ``t+1`` needs from the past is a
    single ``(batch, n)`` slice per quantity (pinned bitwise against the
    one-shot :meth:`~repro.core.network.SpikingNetwork.run` in
    ``tests/unit/test_streaming.py``).

    The representation is engine-specific (states from different engines
    are not interchangeable, and :meth:`~repro.core.network.SpikingNetwork.
    run_stream` rejects a mismatch):

    * ``engine="fused"`` — per adaptive layer ``{"g", "h", "o"}``: the
      scanned crossbar drive ``g[t]`` (eq. 9 applied after the matmul),
      the reset filter ``h[t]`` (eq. 8) and the last output spikes
      ``O[t]``; per hard-reset layer ``{"v"}``: the post-reset membrane.
      All in the stream's dtype.
    * ``engine="step"`` — per adaptive layer ``{"k", "h", "o"}`` with
      ``k`` the *presynaptic* filter state the step path holds on the
      layer (the fused path's ``g = k W^T`` is algebraically equal but not
      bitwise, hence the split representation); per hard-reset layer
      ``{"v"}``.  ``h``/``o``/``v`` are kept float64 regardless of the
      stream dtype because the step path's membrane math runs against the
      float64 weights (zero-initialised state makes the first-step values
      identical either way).

    Instances are plain data: they never reference the network (a server
    holds thousands of them per resident model) and the network's own
    layer/neuron scratch state is untouched by streaming runs.
    ``batch`` may exceed 1 — the serving micro-batcher gathers many
    single-session states into one batched state via :meth:`copy_row`.
    """

    def __init__(self, engine: str, dtype, batch: int,
                 sizes: tuple, kinds: tuple,
                 layers: list[dict[str, np.ndarray]]):
        self.engine = engine
        self.dtype = np.dtype(dtype)
        self.batch = int(batch)
        self.sizes = tuple(sizes)
        self.kinds = tuple(kinds)
        self.layers = layers
        #: Per-row count of consumed time steps (bookkeeping only).
        self.steps = np.zeros(self.batch, dtype=np.int64)

    @classmethod
    def for_network(cls, network, batch: int, engine: str = "fused",
                    precision=None, dtype=np.float64, ws=None) -> "StreamState":
        """A fresh (all-zero) state for ``batch`` independent streams.

        ``ws`` optionally serves the state arrays from a
        :class:`~repro.runtime.workspace.Workspace` — only for transient
        states whose owner recycles them via :meth:`release_to` (the
        serving tick's gather state); session-lived states use plain
        allocation.
        """
        if engine not in ("fused", "step"):
            raise ValueError(
                f"engine must be 'fused' or 'step', got {engine!r}")
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        resolved = resolve_precision(precision) or np.dtype(dtype)
        state_f64 = np.dtype(np.float64)
        zeros = (np.zeros if ws is None
                 else (lambda shape, dtype: ws.zeros(shape, dtype)))
        layers = []
        for layer in network.layers:
            if layer.neuron_kind == "adaptive":
                arrays = {
                    ("g" if engine == "fused" else "k"): zeros(
                        (batch, layer.n_out if engine == "fused"
                         else layer.n_in), dtype=resolved),
                    "h": zeros((batch, layer.n_out),
                               dtype=resolved if engine == "fused"
                               else state_f64),
                    "o": zeros((batch, layer.n_out),
                               dtype=resolved if engine == "fused"
                               else state_f64),
                }
            else:
                arrays = {"v": zeros((batch, layer.n_out),
                                     dtype=resolved if engine == "fused"
                                     else state_f64)}
            layers.append(arrays)
        return cls(engine, resolved, batch, network.sizes,
                   tuple(layer.neuron_kind for layer in network.layers),
                   layers)

    def release_to(self, ws) -> None:
        """Hand workspace-served state arrays back to ``ws``.

        Only for states built with ``for_network(..., ws=...)`` whose
        lifetime has ended (the serving tick's batched gather state);
        the state must not be used afterwards.  Plain-allocated arrays
        are ignored by ``ws.release``, so calling this on a mixed or
        plain state is harmless.
        """
        for arrays in self.layers:
            ws.release(*arrays.values())

    def compatible_with(self, network) -> bool:
        """Whether this state was built for ``network``'s architecture."""
        return (self.sizes == tuple(network.sizes)
                and self.kinds == tuple(layer.neuron_kind
                                        for layer in network.layers))

    def copy_row(self, row: int, source: "StreamState",
                 source_row: int) -> None:
        """Copy one stream's state from ``source[source_row]`` into
        ``self[row]`` — the serving gather/scatter primitive."""
        if (source.engine != self.engine or source.sizes != self.sizes
                or source.kinds != self.kinds):
            raise ValueError("cannot copy state rows across stream kinds")
        for mine, theirs in zip(self.layers, source.layers):
            for key, arr in mine.items():
                arr[row] = theirs[key][source_row]
        self.steps[row] = source.steps[source_row]

    def clone(self) -> "StreamState":
        """An independent deep copy (e.g. for forking a stream)."""
        twin = StreamState(
            self.engine, self.dtype, self.batch, self.sizes, self.kinds,
            [{key: arr.copy() for key, arr in layer.items()}
             for layer in self.layers])
        twin.steps = self.steps.copy()
        return twin

    def __repr__(self) -> str:
        arch = "-".join(str(s) for s in self.sizes)
        return (f"StreamState({arch}, engine={self.engine!r}, "
                f"batch={self.batch}, dtype={self.dtype.name}, "
                f"steps={self.steps.tolist()})")


def _resolve_lengths(lengths, batch: int, steps: int):
    """Validate per-row chunk lengths; returns ``(lengths, ends)`` where
    ``ends`` maps a time index to the rows whose stream finishes there.

    ``None`` lengths (or all rows spanning the full chunk) take the
    homogeneous fast path ``(None, None)``.
    """
    if lengths is None:
        return None, None
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (batch,):
        raise ShapeError(
            f"lengths must have shape ({batch},), got {lengths.shape}")
    if steps == 0:
        raise ShapeError("lengths given for an empty chunk")
    if lengths.min() < 1 or lengths.max() > steps:
        raise ShapeError(
            f"lengths must lie in [1, {steps}], got "
            f"[{lengths.min()}, {lengths.max()}]")
    if np.all(lengths == steps):
        return None, None
    ends = {}
    for t in np.unique(lengths - 1):
        ends[int(t)] = np.flatnonzero(lengths - 1 == t)
    return lengths, ends


def run_streaming(network, chunk: np.ndarray, state: StreamState,
                  lengths=None, ws=None, weights=None) -> np.ndarray:
    """Advance a fused-engine stream by one chunk; returns output spikes.

    ``chunk`` is a validated ``(batch, T_chunk, n_in)`` array in the
    state's dtype (:meth:`~repro.core.network.SpikingNetwork.run_stream`
    handles coercion).  ``state`` is advanced in place.  ``lengths``
    (optional, ``(batch,)`` ints in ``[1, T_chunk]``) marks each row's
    valid prefix in a padded chunk: rows still compute the padded tail
    (rejecting cross-row work would cost more than it saves) but their
    state is captured at their own final valid step, so a padded batched
    run leaves every stream exactly where its own data ended.  Output
    values beyond a row's length are unspecified.

    ``weights`` (optional, one ``(n_out, n_in)`` array per layer)
    substitutes the crossbar product's weight matrices without touching
    the network's own parameters.  This is the hardware-in-the-loop hook:
    :meth:`~repro.hardware.mapped_network.HardwareMappedNetwork.run_stream`
    streams the resident *software* network with the crossbars' achieved
    (quantized + noisy) weights — only the weight values differ, the
    dynamics are byte-for-byte the same code path.

    Every crossbar product uses the CSR spike product unconditionally
    (:func:`_as_csr_always`): CSR output rows are computed independently
    in fixed index order, which makes the chunked/batched results
    bitwise-equal to a one-shot fused run whose probe also picked CSR.
    Without scipy the dense fallback keeps results correct to ulp-level
    accumulation differences, but the bitwise guarantee lapses.

    Unlike :func:`fused_run`, the network's layer/neuron scratch state is
    left untouched — many concurrent streams share one resident network.
    """
    batch, steps, _ = chunk.shape
    lengths, ends = _resolve_lengths(lengths, batch, steps)
    if weights is not None and len(weights) != len(network.layers):
        raise ShapeError(
            f"expected {len(network.layers)} weight overrides, "
            f"got {len(weights)}")
    if steps == 0:
        return np.zeros((batch, 0, network.sizes[-1]), dtype=state.dtype)
    x = chunk
    for index, (layer, st) in enumerate(zip(network.layers, state.layers)):
        weight = None if weights is None else weights[index]
        if layer.neuron_kind == "adaptive":
            spikes = _stream_adaptive_forward(layer, x, st, lengths, ends,
                                              ws, weight)
        else:
            spikes = _stream_hard_reset_forward(layer, x, st, lengths,
                                                ends, ws, weight)
        if ws is not None and x is not chunk:
            ws.release(x)
        x = spikes
    if lengths is None:
        state.steps += steps
    else:
        state.steps += lengths
    return x


def _stream_gv(layer, xs, ws, gain: float = 1.0,
               weight: np.ndarray | None = None) -> np.ndarray:
    """The chunk's crossbar drive via the always-CSR product.

    ``weight`` substitutes the layer's weight matrix (the hardware
    override of :func:`run_streaming`); shape must match.
    """
    if weight is None:
        weight = layer.weight
    elif weight.shape != layer.weight.shape:
        raise ShapeError(
            f"{layer.name}: weight override shape {weight.shape} != "
            f"{layer.weight.shape}")
    batch, steps, n_in = xs.shape
    flat_x = xs.reshape(batch * steps, n_in)
    return _layer_gv(weight, xs, xs.dtype,
                     _as_csr_always(flat_x, ws), ws, gain=gain)


def _stream_adaptive_forward(layer, xs, st, lengths, ends, ws, weight=None):
    """One chunk of an adaptive layer, carrying ``{g, h, o}`` across calls.

    Op-for-op the same sequence as :func:`_fused_adaptive_forward` — the
    drive scan seeded with the carried ``g`` (see :func:`exp_scan`) and
    the threshold loop seeded with the carried ``h``/``o`` (zero carries
    reproduce the one-shot first step exactly, because ``0*beta`` and
    ``+= 0`` are bitwise no-ops on the all-positive-zero fresh state).
    """
    dtype = xs.dtype
    batch, steps, _ = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    theta = neuron.params.theta
    v_th = neuron.params.v_th
    beta = neuron.beta_r

    gv = _stream_gv(layer, xs, ws, weight=weight)
    exp_scan(gv, layer.alpha, out=gv, carry=st["g"])
    # The carry for the next chunk is the *scanned drive* at each row's
    # final valid step — captured before the threshold loop rewrites
    # ``gv`` into membrane values in place.
    if lengths is None:
        np.copyto(st["g"], gv[:, -1])
    else:
        np.copyto(st["g"], gv[np.arange(batch), lengths - 1])

    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    h = st["h"]
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    h_final = o_final = None
    if ends is not None:
        h_final = _ws_empty(ws, (batch, n_out), dtype)
        o_final = _ws_empty(ws, (batch, n_out), dtype)
    o_prev = st["o"]
    for t in range(steps):
        h *= beta
        h += o_prev
        v_t = gv[:, t]
        np.multiply(h, theta, out=scratch)
        v_t -= scratch                    # v[t] = g[t] - theta*h[t] (eq. 6)
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th            # O[t] = U(v[t] - Vth) (eq. 10/11)
        o_prev = o_t
        if ends is not None:
            rows = ends.get(t)
            if rows is not None:
                h_final[rows] = h[rows]
                o_final[rows] = o_t[rows]
    if ends is None:
        np.copyto(st["o"], spikes[:, -1])
    else:
        # Padded rows kept evolving the shared working ``h`` past their
        # end; restore every row from its own captured snapshot.
        np.copyto(st["h"], h_final)
        np.copyto(st["o"], o_final)
        _ws_release(ws, h_final, o_final)
    _ws_release(ws, scratch, gv)
    return spikes


def _stream_hard_reset_forward(layer, xs, st, lengths, ends, ws,
                               weight=None):
    """One chunk of a hard-reset layer, carrying ``{v}`` across calls."""
    dtype = xs.dtype
    batch, steps, _ = xs.shape
    n_out = layer.n_out
    neuron = layer.neuron
    alpha = neuron.alpha
    v_th = neuron.params.v_th

    gv = _stream_gv(layer, xs, ws, gain=float(neuron.input_gain),
                    weight=weight)
    spikes = _ws_empty(ws, (batch, steps, n_out), dtype)
    v_post = st["v"]
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    v_final = None
    if ends is not None:
        v_final = _ws_empty(ws, (batch, n_out), dtype)
    for t in range(steps):
        v_t = gv[:, t]
        np.multiply(v_post, alpha, out=scratch)
        v_t += scratch                    # v_pre[t] = alpha*v_post[t-1] + j[t]
        o_t = spikes[:, t]
        o_t[...] = v_t >= v_th
        np.subtract(1.0, o_t, out=scratch)
        np.multiply(v_t, scratch, out=v_post)   # hard reset (eq. 1b)
        if ends is not None:
            rows = ends.get(t)
            if rows is not None:
                v_final[rows] = v_post[rows]
    if ends is not None:
        np.copyto(st["v"], v_final)
        _ws_release(ws, v_final)
    _ws_release(ws, scratch, gv)
    return spikes


# -- backward ---------------------------------------------------------------

def fused_backward(network, record, grad_outputs: np.ndarray,
                   mode: str = "exact", precision=None, ws=None,
                   need_input_grad: bool = True, weights=None):
    """Fused BPTT through a recorded run; drop-in for
    :func:`repro.core.backprop.backward`.

    The adjoint recursions of the reference implementation are split the
    same way as the forward pass: the ``delta_v`` recurrence stays a
    sequential elementwise scan over preallocated ``(batch, T, n)``
    buffers, while the weight gradient becomes one ``tensordot`` over
    ``(batch, T)`` and the input gradient one batched matmul plus a
    reverse exponential scan (exact mode's ``alpha``-carry).

    ``precision`` defaults to the record's dtype (so a float32 forward run
    gets a float32 backward); pass ``"float64"`` to upcast.  ``ws`` serves
    and recycles the adjoint buffers; the only buffer that survives the
    call is the one captured by the deferred input-gradient closure, and
    that one is deliberately allocated outside the workspace.  Training
    never reads ``GradientResult.input_grad``, so the trainer/pool path
    passes ``need_input_grad=False`` — the closure (and its captured
    plain buffer + weight snapshot) is then skipped entirely and every
    adjoint buffer returns to the workspace.

    ``weights`` substitutes the per-layer weight matrices of the adjoint
    matmuls — pass the same override list the forward
    (:func:`fused_run` ``weights=``) ran with.  The returned
    ``weight_grads`` are then gradients with respect to the *override*
    weights; the straight-through estimator of hardware-aware training
    applies them unchanged to the full-precision master weights.
    """
    if mode not in ("exact", "truncated"):
        raise ValueError(f"mode must be 'exact' or 'truncated', got {mode!r}")
    from .backprop import GradientResult   # local import: avoids a cycle

    outputs = record.outputs
    if grad_outputs.shape != outputs.shape:
        raise ShapeError(
            f"grad_outputs shape {grad_outputs.shape} != outputs {outputs.shape}"
        )
    dtype = resolve_precision(precision) or outputs.dtype
    if weights is not None and len(weights) != len(network.layers):
        raise ShapeError(
            f"expected {len(network.layers)} weight overrides, "
            f"got {len(weights)}")

    grad_spikes = np.asarray(grad_outputs, dtype=dtype)
    cached_csrs = getattr(record, "_input_csrs", None)
    weight_grads: list[np.ndarray] = [None] * len(network.layers)
    input_grad_fn = None
    for index in range(len(network.layers) - 1, -1, -1):
        layer = network.layers[index]
        layer_record = record.layers[index]
        override = _resolve_weight_override(
            layer, None if weights is None else weights[index])
        # Forward-pass conversions are authoritative: a cached CSR is
        # reused, a cached None means the input was probed dense (skip
        # re-probing).  Only a missing/incompatible cache re-probes.
        csr = _AUTO_CSR
        if cached_csrs is not None:
            csr = cached_csrs[index]
            if csr is not None and csr.dtype != dtype:
                csr = _AUTO_CSR
        defer = index == 0 and need_input_grad
        if layer.neuron_kind == "adaptive":
            w_grad, grad_inputs_fn, retained = _fused_backward_adaptive(
                layer, layer_record, record.layer_input(index),
                grad_spikes, mode, dtype, csr, defer, ws, override,
            )
        else:
            w_grad, grad_inputs_fn, retained = _fused_backward_hard_reset(
                layer, layer_record, record.layer_input(index),
                grad_spikes, dtype, csr, defer, ws, override,
            )
        weight_grads[index] = w_grad
        if index == 0:
            if need_input_grad:
                # The network-input gradient is only consumed by
                # sensitivity analyses, never by training — defer its
                # dense matmul until someone actually reads
                # GradientResult.input_grad.
                input_grad_fn = grad_inputs_fn
            else:
                # Closure discarded unused; its buffers recycle now.
                _ws_release(ws, *retained)
            # The last consumed adjoint is dead (a deferred closure
            # captures its own plain-allocated buffers, never this one).
            _ws_release(ws, grad_spikes)
        else:
            upstream = grad_spikes
            grad_spikes = grad_inputs_fn()
            # The consumed adjoint and this layer's scan buffers are dead
            # once the next upstream gradient exists.
            _ws_release(ws, upstream, *retained)
    return GradientResult(weight_grads=weight_grads, input_grad=None,
                          input_grad_fn=input_grad_fn)


def _fused_backward_adaptive(layer, layer_record, layer_inputs, grad_spikes,
                             mode, dtype, csr=_AUTO_CSR, defer=False,
                             ws=None, override=None):
    """Adaptive-layer adjoints with the matmuls hoisted out of the time loop.

    Sequential part (elementwise, reverse time)::

        delta_v[t] = (dE/dO[t] + reset_term[t]) * eps[t]
        exact:      reset_term[t] = a_h[t+1],  a_h[t] = beta*a_h[t+1] - theta*delta_v[t]
        truncated:  reset_term[t] = -theta * delta_v[t+1]

    Hoisted part — with ``e = exp_scan_reverse(delta_v, alpha)``, the
    synapse filter's adjoint.  The filter is linear, so it moves off the
    recorded trace ``k`` and onto the adjoint
    (``sum_t delta_v[t]^T k[t] == sum_s e[s]^T x[s]``), and it commutes
    with the weight product (``revscan(delta_v @ W) == e @ W``)::

        dE/dW    = sum_{b,s} e[b,s]^T x[b,s]    (sparse-aware contraction)
        dE/dx[t] = e @ W          (exact)
                 = delta_v @ W    (truncated; eq. 13 drops the alpha-carry)

    Working from the raw presynaptic spikes ``x`` instead of ``k`` lets
    :func:`spike_outer` contract over the spike nonzeros only, and is why
    the record's ``k`` tensor is never touched here.
    """
    params = layer.params
    theta = params.theta
    beta = layer.neuron.beta_r

    v = np.asarray(layer_record.v, dtype=dtype)
    batch, steps, n_out = v.shape

    eps = np.asarray(layer.surrogate.derivative(v - params.v_th), dtype=dtype)

    # The buffer the deferred (layer-0) closure captures must outlive this
    # call indefinitely, so it is never taken from the workspace.
    capture_dv = defer and mode == "truncated"
    if capture_dv:
        dv = np.empty((batch, steps, n_out), dtype=dtype)
    else:
        dv = _ws_empty(ws, (batch, steps, n_out), dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    if mode == "exact":
        a_h = np.zeros((batch, n_out), dtype=dtype)
        for t in range(steps - 1, -1, -1):
            dv_t = dv[:, t]
            np.add(grad_spikes[:, t], a_h, out=dv_t)
            dv_t *= eps[:, t]
            a_h *= beta
            np.multiply(dv_t, theta, out=scratch)
            a_h -= scratch
    else:
        np.multiply(grad_spikes[:, -1], eps[:, -1], out=dv[:, -1])
        for t in range(steps - 2, -1, -1):
            np.multiply(dv[:, t + 1], theta, out=scratch)
            np.subtract(grad_spikes[:, t], scratch, out=dv[:, t])
            dv[:, t] *= eps[:, t]
    _ws_release(ws, scratch)

    if defer and mode == "exact":
        e = exp_scan_reverse(dv, layer.alpha)          # captured: plain
    else:
        e = exp_scan_reverse(dv, layer.alpha,
                             out=_ws_empty(ws, dv.shape, dtype))
    flat_x = np.asarray(layer_inputs, dtype=dtype).reshape(
        batch * steps, layer.n_in
    )
    w_grad = spike_outer(e.reshape(batch * steps, n_out), flat_x, csr=csr)

    # The adjoint matmuls traverse the weights the forward pass used: the
    # layer's own, or the caller's override (hardware-aware training).
    weight = np.asarray(layer.weight if override is None else override,
                        dtype=dtype)
    if defer and weight is layer.weight:
        # The closure may be called after an in-place optimizer step;
        # snapshot the weights the forward pass actually used.
        weight = weight.copy()
    upstream = e if mode == "exact" else dv

    if defer:
        # Recycle whichever scan buffer the closure does not capture.
        _ws_release(ws, dv if mode == "exact" else e)

        def grad_inputs_fn() -> np.ndarray:
            return (upstream.reshape(batch * steps, n_out) @ weight).reshape(
                batch, steps, layer.n_in
            )

        return w_grad, grad_inputs_fn, ()

    def grad_inputs_fn() -> np.ndarray:
        out = _ws_empty(ws, (batch, steps, layer.n_in), dtype)
        np.matmul(upstream.reshape(batch * steps, n_out), weight,
                  out=out.reshape(batch * steps, layer.n_in))
        return out

    return w_grad, grad_inputs_fn, (dv, e)


def _fused_backward_hard_reset(layer, layer_record, layer_inputs,
                               grad_spikes, dtype, csr=_AUTO_CSR,
                               defer=False, ws=None, override=None):
    """Hard-reset adjoints with the matmuls hoisted (reset gate detached)."""
    params = layer.params
    alpha = layer.neuron.alpha
    input_gain = getattr(layer.neuron, "input_gain", 1.0)

    v_pre = np.asarray(layer_record.v, dtype=dtype)
    spikes = np.asarray(layer_record.spikes, dtype=dtype)
    layer_inputs = np.asarray(layer_inputs, dtype=dtype)
    batch, steps, n_out = v_pre.shape

    eps = np.asarray(layer.surrogate.derivative(v_pre - params.v_th),
                     dtype=dtype)

    # delta_v[t] = dE/dO[t]*eps[t] + alpha*(1 - O[t])*delta_v[t+1]
    # (``dv`` is what a deferred closure captures, so plain-allocated then).
    if defer:
        dv = np.empty((batch, steps, n_out), dtype=dtype)
    else:
        dv = _ws_empty(ws, (batch, steps, n_out), dtype)
    scratch = _ws_empty(ws, (batch, n_out), dtype)
    np.multiply(grad_spikes[:, -1], eps[:, -1], out=dv[:, -1])
    for t in range(steps - 2, -1, -1):
        dv_t = dv[:, t]
        np.subtract(1.0, spikes[:, t], out=scratch)
        scratch *= dv[:, t + 1]
        scratch *= alpha
        np.multiply(grad_spikes[:, t], eps[:, t], out=dv_t)
        dv_t += scratch
    _ws_release(ws, scratch)

    weight = np.asarray(layer.weight if override is None else override,
                        dtype=dtype)
    if defer and weight is layer.weight:
        # Snapshot: the closure may run after an in-place optimizer step.
        weight = weight.copy()
    flat_x = layer_inputs.reshape(batch * steps, layer.n_in)
    w_grad = spike_outer(dv.reshape(batch * steps, n_out), flat_x, csr=csr)
    if input_gain != 1.0:
        w_grad *= input_gain

    if defer:
        def grad_inputs_fn() -> np.ndarray:
            grad_inputs = (dv.reshape(batch * steps, n_out) @ weight
                           ).reshape(batch, steps, layer.n_in)
            if input_gain != 1.0:
                grad_inputs *= input_gain
            return grad_inputs

        return w_grad, grad_inputs_fn, ()

    def grad_inputs_fn() -> np.ndarray:
        out = _ws_empty(ws, (batch, steps, layer.n_in), dtype)
        np.matmul(dv.reshape(batch * steps, n_out), weight,
                  out=out.reshape(batch * steps, layer.n_in))
        if input_gain != 1.0:
            out *= input_gain
        return out

    return w_grad, grad_inputs_fn, (dv,)
