"""RRAM crossbar array model (paper Fig. 3 / Fig. 6 datapath).

A crossbar performs the matrix-vector product of eq. (7) in the analog
domain: filtered PSP voltages drive the word-lines, each cell sources a
current ``I = G * V`` into its bit-line (Ohm's law), and the bit-line
currents sum by Kirchhoff's law.  A sense resistor at each bit-line foot
converts current to the voltage compared by the neuron circuit.

This module models one *differential* crossbar (a ``g+`` and a ``g-``
device per weight, two physical arrays) including:

* k-bit conductance quantization (via :mod:`repro.hardware.devices`),
* per-device lognormal programming variation (Fig. 8 sweep),
* optional read noise,
* the sense-resistor current-to-voltage conversion.  Per the paper, the
  loading effect of the sense resistor on the bit-line is neglected ("we
  ignore this effect ... as it should only affect the magnitude of the
  resulting current and not the shape"), which corresponds to an ideal
  current amplifier between bit-line and resistor [9].
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .devices import RRAMCellArray, RRAMDeviceConfig
from .quantization import weights_to_conductances

__all__ = ["DifferentialCrossbar"]


class DifferentialCrossbar:
    """Differential-pair crossbar realising a signed weight matrix.

    Parameters
    ----------
    weights:
        Trained weight matrix (n_out, n_in) to be programmed.
    device:
        Device model (levels = 2**bits for Fig. 8).
    rng:
        Randomness for programming variation / read noise.
    v_read:
        Nominal read voltage corresponding to a unit input activation.
    r_sense:
        Sense resistance converting bit-line current to voltage.
    """

    def __init__(self, weights: np.ndarray,
                 device: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None,
                 v_read: float = 0.2, r_sense: float = 5e3):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got {weights.shape}")
        if v_read <= 0 or r_sense <= 0:
            raise ValueError("v_read and r_sense must be positive")
        self.weights = weights
        self.device = device or RRAMDeviceConfig()
        self.rng = as_random_state(rng)
        self.v_read = float(v_read)
        self.r_sense = float(r_sense)

        self.array_plus = RRAMCellArray(
            weights.shape, self.device, rng=self.rng.child("plus"))
        self.array_minus = RRAMCellArray(
            weights.shape, self.device, rng=self.rng.child("minus"))
        # (g_diff, w_eff) memoised against the arrays' programming
        # generations — see effective_weights().
        self._cache_versions: tuple[int, int] | None = None
        self._cache_g_diff: np.ndarray | None = None
        self._cache_weights: np.ndarray | None = None
        self.program()

    # -- programming -----------------------------------------------------------
    def program(self, weights: np.ndarray | None = None) -> None:
        """(Re-)program both arrays from ``weights`` (default: the weights
        given at construction).

        Each call draws fresh device variation from the crossbar's rng
        streams and advances the arrays' programming generation, which
        invalidates every cached read-derived quantity
        (:meth:`effective_weights`, the differential conductances).
        """
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.weights.shape:
                raise ShapeError(
                    f"expected weights of shape {self.weights.shape}, "
                    f"got {weights.shape}"
                )
            self.weights = weights
        g_plus, g_minus, self.weight_scale = weights_to_conductances(
            self.weights, self.device
        )
        self.array_plus.program(g_plus)
        self.array_minus.program(g_minus)

    def _differential_read(self, rng: RandomState | None = None) -> np.ndarray:
        """``G+ - G-`` with caching keyed to the programming generation.

        With ``read_noise == 0`` a read is a pure function of the last
        programming, so the subtraction is memoised until either array is
        re-programmed.  Read noise makes every read stochastic; caching is
        then disabled so each call still draws fresh noise.  ``rng``
        redirects that noise draw to a caller-owned stream (``plus`` read
        first, then ``minus`` — a fixed order, so one seed pins the whole
        differential realization).
        """
        if self.device.read_noise > 0:
            return self.array_plus.read(rng) - self.array_minus.read(rng)
        versions = (self.array_plus.version, self.array_minus.version)
        if self._cache_versions != versions:
            self._cache_g_diff = (self.array_plus.read()
                                  - self.array_minus.read())
            self._cache_weights = None
            self._cache_versions = versions
        return self._cache_g_diff

    # -- analog path -----------------------------------------------------------
    def bitline_currents(self, activations: np.ndarray) -> np.ndarray:
        """Differential bit-line currents for input ``activations``.

        Parameters
        ----------
        activations:
            (n_in,) or (batch, n_in) unit-less activations; scaled by
            ``v_read`` into word-line voltages.

        Returns
        -------
        ndarray
            (n_out,) or (batch, n_out) currents ``I+ - I-`` in amperes.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.shape[-1] != self.weights.shape[1]:
            raise ShapeError(
                f"expected {self.weights.shape[1]} inputs, "
                f"got {activations.shape[-1]}"
            )
        voltages = activations * self.v_read
        g_diff = self._differential_read()
        return voltages @ g_diff.T

    def output_voltages(self, activations: np.ndarray) -> np.ndarray:
        """Sense-resistor voltages ``I * r_sense``."""
        return self.bitline_currents(activations) * self.r_sense

    def effective_weights(self, rng: RandomState | None = None) -> np.ndarray:
        """The signed weights actually realised by the programmed devices.

        Cached against the arrays' programming generation when read noise
        is off (mapping a network and then computing its
        :meth:`~repro.hardware.mapped_network.HardwareMappedNetwork.
        weight_errors` previously paid the device reads and scaling twice
        per layer).  Re-programming either array invalidates the cache;
        callers must not mutate the returned array.

        ``rng`` pins this read's noise realization to a caller-owned
        stream (no caching on that path: the caller *asked* for a fresh
        stochastic read); it is ignored when ``read_noise == 0``.
        """
        window = self.device.g_max - self.device.g_min
        if self.device.read_noise > 0:
            return self._differential_read(rng) * self.weight_scale / window
        if self._cache_weights is None or (
                self._cache_versions != (self.array_plus.version,
                                         self.array_minus.version)):
            self._cache_weights = (self._differential_read()
                                   * self.weight_scale / window)
            # Mutating the returned array would corrupt every later read;
            # fail loudly instead of silently (callers needing a mutable
            # copy take one explicitly).
            self._cache_weights.setflags(write=False)
        return self._cache_weights

    def matvec(self, activations: np.ndarray) -> np.ndarray:
        """Numerically-referred product ``activations @ W_eff.T``.

        This is the quantity the mapped network uses: the analog chain's
        gains (v_read, r_sense, conductance window) cancel against the
        calibrated weight scale, leaving the trained-weight units.
        """
        activations = np.asarray(activations, dtype=np.float64)
        return activations @ self.effective_weights().T

    def __repr__(self) -> str:
        return (f"DifferentialCrossbar({self.weights.shape[0]}x"
                f"{self.weights.shape[1]}, levels={self.device.levels}, "
                f"variation={self.device.variation})")
