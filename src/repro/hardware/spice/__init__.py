"""A compact behavioral analog circuit simulator (MNA + backward Euler).

Substitutes for the paper's Cadence Virtuoso transient simulations: linear
R/C networks are solved exactly per step; op-amps, comparators and
inverters are behavioral sources with finite gain, bandwidth, rails and
slew (see :mod:`repro.hardware.spice.netlist`).
"""

from .mna import Circuit, TransientResult
from .netlist import (
    GROUND,
    BehavioralSource,
    Capacitor,
    Component,
    Resistor,
    VoltageSource,
    comparator,
    inverter,
    summing_amp,
)
from .waveforms import (
    constant,
    count_pulses,
    falling_crossings,
    pulse_train,
    pwl,
    rising_crossings,
    trace_stats,
)

__all__ = [
    "Circuit",
    "TransientResult",
    "GROUND",
    "BehavioralSource",
    "Capacitor",
    "Component",
    "Resistor",
    "VoltageSource",
    "comparator",
    "inverter",
    "summing_amp",
    "constant",
    "count_pulses",
    "falling_crossings",
    "pulse_train",
    "pwl",
    "rising_crossings",
    "trace_stats",
]
