"""Worker restart machinery for the self-healing :class:`WorkerPool`.

A transport failure — a worker process that died, stopped replying, or
sent a protocol-violating reply — used to close the whole pool.  That is
the wrong trade for fleet-style runs: every surviving worker holds a
warm network replica and attached shared memory, and the failed shard is
deterministically recomputable (the arenas are master-owned, the command
is still in hand, and replicas rebuild bit-identically from the
``_PoolSpec``).  So the pool now *heals*: it hands the failed worker
indices to a :class:`WorkerSupervisor`, which

1. reclaims the old process (``terminate()``, escalating to ``kill()``
   for a SIGTERM-ignoring worker) and closes its pipe,
2. waits an exponential backoff (restart storms must not busy-spin a
   machine that is actually out of memory),
3. respawns the worker from the pool's original spec at an incremented
   **generation** (fault rules scoped ``where={"generation": 0}`` stop
   firing in the replacement — see :mod:`repro.common.faults`),
4. completes the ``ready`` handshake.

The dispatch then requeues exactly the in-flight commands of the failed
worker and carries on.  Attempts are bounded by
:class:`RestartPolicy.max_restarts` *per dispatch*; past the bound the
pool closes and the transport error propagates, so a persistently dying
worker (genuine OOM, broken native library) still fails loudly.

:class:`~repro.runtime.pool.WorkerError` never reaches this module: an
exception raised by user code inside a worker is not a transport failure
and is deliberately not retried.
"""

from __future__ import annotations

import dataclasses
import time

from .. import obs as _obs

__all__ = ["RestartPolicy", "WorkerSupervisor"]


@dataclasses.dataclass(frozen=True)
class RestartPolicy:
    """Bounds and pacing for worker restarts.

    ``max_restarts`` bounds *heal rounds per dispatch* (a round may
    restart several workers at once after a collective timeout).
    Backoff grows ``backoff_s * backoff_factor**n`` with the pool's
    lifetime restart count ``n``, capped at ``max_backoff_s``.
    """

    max_restarts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    #: Grace period for ``terminate()`` before escalating to ``kill()``.
    term_grace_s: float = 5.0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, restarts_so_far: int) -> float:
        return min(self.backoff_s * self.backoff_factor ** restarts_so_far,
                   self.max_backoff_s)


class WorkerSupervisor:
    """Replaces dead/hung workers of one :class:`WorkerPool` in place.

    The supervisor owns no processes itself — it mutates the pool's
    ``_procs`` / ``_conns`` / ``_generations`` slots so every other pool
    mechanism (``_wait_any``'s liveness checks, ``close()``) keeps
    working on the current incarnation.
    """

    def __init__(self, pool, policy: RestartPolicy | None = None):
        self._pool = pool
        self.policy = policy if policy is not None else RestartPolicy()
        #: Lifetime restarts across all workers (drives the backoff).
        self.restarts = 0

    def restart(self, index: int) -> None:
        """Reclaim worker ``index`` and bring up its next generation.

        Raises the pool's transport error if the replacement fails its
        ready handshake — the caller's bounded retry loop handles it
        like any other transport failure.
        """
        pool = self._pool
        self._reclaim(index)
        delay = self.policy.delay(self.restarts)
        if delay > 0:
            time.sleep(delay)
        pool._generations[index] += 1
        proc, conn = pool._spawn_worker(index)
        pool._procs[index] = proc
        pool._conns[index] = conn
        self.restarts += 1
        pool._c_restarts.inc()
        pool.metrics.counter(
            "pool.respawns",
            help="respawns of one worker slot", worker=index).inc()
        _obs.event("pool.respawn", worker=index,
                   generation=pool._generations[index])
        pool._recv(index)  # "ready" handshake from the new generation

    def _reclaim(self, index: int) -> None:
        pool = self._pool
        try:
            pool._conns[index].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc = pool._procs[index]
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.policy.term_grace_s)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=self.policy.term_grace_s)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass  # teardown races: the replacement does not depend on it
