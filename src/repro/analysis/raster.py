"""Conversions between dense spike rasters and event lists, plus summaries.

Dense rasters (arrays of shape ``(T, channels)`` or ``(batch, T, channels)``)
are the working format of the core library; event lists (``(t, channel)``
or ``(t, x, y, polarity)`` tuples) are the native format of DVS sensors and
of the paper's Fig. 4/5 scatter plots.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError

__all__ = [
    "events_to_dense",
    "dense_to_events",
    "raster_summary",
    "flatten_dvs",
    "unflatten_dvs",
]


def events_to_dense(events: np.ndarray, steps: int, channels: int) -> np.ndarray:
    """Accumulate an event list into a dense (steps, channels) count raster.

    ``events`` is an integer array of shape (n_events, 2) with columns
    ``(t, channel)``.  Multiple events in one cell accumulate.
    """
    raster = np.zeros((steps, channels), dtype=np.float64)
    events = np.asarray(events)
    if events.size == 0:
        return raster
    if events.ndim != 2 or events.shape[1] != 2:
        raise ShapeError(f"events must be (n, 2), got {events.shape}")
    t = events[:, 0].astype(int)
    c = events[:, 1].astype(int)
    if t.min() < 0 or t.max() >= steps:
        raise ShapeError(f"event time out of range [0, {steps})")
    if c.min() < 0 or c.max() >= channels:
        raise ShapeError(f"event channel out of range [0, {channels})")
    np.add.at(raster, (t, c), 1.0)
    return raster


def dense_to_events(raster: np.ndarray) -> np.ndarray:
    """Inverse of :func:`events_to_dense` (cells with count k emit k events).

    Returns an (n_events, 2) int array sorted by time then channel.
    """
    raster = np.asarray(raster)
    if raster.ndim != 2:
        raise ShapeError(f"expected (steps, channels), got {raster.shape}")
    times, channels = np.nonzero(raster > 0)
    counts = raster[times, channels].astype(int)
    events = np.repeat(
        np.stack([times, channels], axis=1), counts, axis=0
    )
    return events.astype(np.int64)


def raster_summary(raster: np.ndarray) -> dict:
    """Basic statistics of a (T, channels) raster (for Fig. 4-style reports)."""
    raster = np.asarray(raster)
    if raster.ndim != 2:
        raise ShapeError(f"expected (steps, channels), got {raster.shape}")
    steps, channels = raster.shape
    total = float(raster.sum())
    active = int(np.count_nonzero(raster.sum(axis=0)))
    per_step = raster.sum(axis=1)
    return {
        "steps": steps,
        "channels": channels,
        "total_spikes": total,
        "active_channels": active,
        "mean_rate": total / (steps * channels),
        "peak_step_activity": float(per_step.max()) if steps else 0.0,
        "first_spike_step": int(np.argmax(per_step > 0)) if total else -1,
    }


def flatten_dvs(events: np.ndarray, height: int = 34, width: int = 34) -> np.ndarray:
    """Flatten a (T, H, W, 2) DVS count tensor to (T, H*W*2) channels.

    Channel layout: ``channel = (y*width + x)*2 + polarity`` — the layout
    assumed by the N-MNIST MLP input layer.
    """
    events = np.asarray(events)
    if events.ndim != 4 or events.shape[1:] != (height, width, 2):
        raise ShapeError(
            f"expected (T, {height}, {width}, 2), got {events.shape}"
        )
    return events.reshape(events.shape[0], height * width * 2)


def unflatten_dvs(raster: np.ndarray, height: int = 34, width: int = 34) -> np.ndarray:
    """Inverse of :func:`flatten_dvs`."""
    raster = np.asarray(raster)
    if raster.ndim != 2 or raster.shape[1] != height * width * 2:
        raise ShapeError(
            f"expected (T, {height * width * 2}), got {raster.shape}"
        )
    return raster.reshape(raster.shape[0], height, width, 2)
