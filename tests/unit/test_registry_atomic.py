"""Registry concurrency & robustness regressions (ISSUE 5 satellites).

Pinned here:

* ``save`` / ``save_profile`` allocate ids with an ``O_EXCL`` claim and
  land artifacts via temp-file + ``os.replace`` — two interleaved savers
  can never collide on a version, and a crash mid-save leaves nothing a
  reader mistakes for a complete artifact;
* ``list`` / ``list_profiles`` tolerate broken entries (orphan ``.npz``
  without a sidecar, corrupt/empty JSON) by skipping them with a
  ``RuntimeWarning`` that names the path — one bad artifact cannot take
  down ``from_registry`` discovery.
"""

import json
import os
import threading
import warnings

import numpy as np
import pytest

from repro.core import SpikingNetwork
from repro.hardware import HardwareProfile
from repro.serve import ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(str(tmp_path))


@pytest.fixture
def network():
    return SpikingNetwork((8, 6, 3), rng=0)


class TestAtomicSave:
    def test_interleaved_savers_get_distinct_versions(self, registry,
                                                      network):
        """Two threads saving concurrently never collide on a version and
        every saved artifact is complete (npz + sidecar)."""
        errors = []

        def saver():
            try:
                for _ in range(6):
                    registry.save("m", network)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=saver) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        versions = registry.versions("m")
        assert len(versions) == 18
        assert len(set(versions)) == 18
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # every entry must be intact
            assert len(registry.list("m")) == 18

    def test_interleaved_profile_savers(self, registry):
        errors = []
        profile = HardwareProfile.create(bits=4, variation=0.1, seed=1)

        def saver():
            try:
                for _ in range(5):
                    registry.save_profile("m", profile)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=saver) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        profiles = registry.profiles("m")
        assert len(profiles) == 10 and len(set(profiles)) == 10
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(registry.list_profiles("m")) == 10

    def test_claimed_version_is_skipped_by_allocation(self, registry,
                                                      network):
        """A concurrent saver's claim (empty npz) pushes the next
        allocation past it instead of overwriting it."""
        registry.save("m", network)
        claim = registry.path("m", "v0002")
        open(claim, "wb").close()  # someone else's in-flight claim
        assert registry.save("m", network) == "v0003"
        # The claim was never touched.
        assert os.path.getsize(claim) == 0

    def test_latest_skips_incomplete_claims(self, registry, network):
        """Default loads must never resolve to an in-flight claim or a
        sidecar-less crash leftover (regression: latest() counted them
        and load(name) crashed on the 0-byte npz) — while allocation
        still advances past them."""
        import shutil

        registry.save("m", network)
        open(registry.path("m", "v0002"), "wb").close()  # empty claim
        # A real npz whose save crashed before the sidecar landed.
        shutil.copy(registry.path("m", "v0001"), registry.path("m", "v0003"))
        assert registry.latest("m") == "v0001"
        rebuilt, _ = registry.load("m")  # version=None -> latest loadable
        assert rebuilt.sizes == network.sizes
        assert registry.save("m", network) == "v0004"

    def test_latest_profile_skips_empty_claim(self, registry):
        registry.save_profile("m", HardwareProfile.create(bits=4, seed=0))
        open(registry.profile_path("m", "hw0002"), "w").close()
        assert registry.latest_profile("m") == "hw0001"
        profile, _ = registry.load_profile("m")  # profile=None -> latest
        assert profile.bits == 4
        assert registry.save_profile(
            "m", HardwareProfile.create(bits=5, seed=1)) == "hw0003"

    def test_save_is_complete_after_return(self, registry, network):
        version = registry.save("m", network, meta={"tag": "x"})
        npz = registry.path("m", version)
        sidecar = os.path.splitext(npz)[0] + ".json"
        assert os.path.getsize(npz) > 0
        payload = json.load(open(sidecar))
        assert payload["meta"]["tag"] == "x"
        assert "saved_unix" in payload["meta"]
        rebuilt, meta = registry.load("m", version)
        assert rebuilt.sizes == network.sizes
        for a, b in zip(rebuilt.weights, network.weights):
            np.testing.assert_array_equal(a, b)

    def test_temp_files_are_invisible(self, registry, network):
        """Leftovers of a crashed save (temp stems) never appear in
        versions/listings."""
        registry.save("m", network)
        directory = os.path.join(registry.root, "m")
        open(os.path.join(directory, ".tmp-ckpt-999-7.npz"), "wb").close()
        open(os.path.join(directory, ".tmp-hw-999-8.json"), "w").close()
        assert registry.versions("m") == ["v0001"]
        assert registry.profiles("m") == []
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(registry.list("m")) == 1


class TestRobustListing:
    def test_orphan_npz_is_skipped_with_warning(self, registry, network):
        """An interrupted save's orphan .npz (real content, no sidecar)
        cannot break the listing (regression: SerializationError took
        down the whole list())."""
        import shutil

        registry.save("m", network)
        # Crash-after-npz-replace leftover: complete archive, no sidecar.
        shutil.copy(registry.path("m", "v0001"), registry.path("m", "v0007"))
        with pytest.warns(RuntimeWarning, match="v0007"):
            entries = registry.list("m")
        assert [entry["version"] for entry in entries] == ["v0001"]

    def test_inflight_claim_is_skipped_silently(self, registry, network):
        """Another saver's O_EXCL claim (empty file) is a healthy
        transient — listings must skip it WITHOUT warning (warnings-as-
        errors discovery would otherwise die on normal concurrency)."""
        registry.save("m", network)
        open(registry.path("m", "v0002"), "wb").close()
        open(registry.profile_path("m", "hw0001"), "w").close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert [e["version"] for e in registry.list("m")] == ["v0001"]
            assert registry.list_profiles("m") == []

    def test_corrupt_sidecar_is_skipped_with_warning(self, registry,
                                                     network):
        registry.save("m", network)
        registry.save("m", network)
        sidecar = os.path.splitext(registry.path("m", "v0001"))[0] + ".json"
        with open(sidecar, "w") as handle:
            handle.write("{not json")
        with pytest.warns(RuntimeWarning, match="v0001"):
            entries = registry.list()
        assert [entry["version"] for entry in entries] == ["v0002"]

    def test_corrupt_profile_is_skipped_with_warning(self, registry):
        profile = HardwareProfile.create(bits=4, seed=0)
        registry.save_profile("m", profile)
        with open(registry.profile_path("m", "hw0005"), "w") as handle:
            handle.write("{broken json")
        with pytest.warns(RuntimeWarning, match="hw0005"):
            entries = registry.list_profiles("m")
        assert [entry["profile"] for entry in entries] == ["hw0001"]

    def test_discovery_survives_broken_entries(self, registry, network):
        """from_registry-style discovery (list + load latest) works with
        a broken artifact in the directory."""
        from repro.serve import ModelServer

        registry.save("m", network)
        open(registry.path("m", "v0002"), "wb").close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            server = ModelServer.from_registry(registry, "m",
                                               version="v0001")
        assert server.model_version == "v0001"

    def test_intact_listing_warns_nothing(self, registry, network):
        registry.save("m", network)
        registry.save_profile("m", HardwareProfile.create(bits=4, seed=0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(registry.list()) == 1
            assert len(registry.list_profiles()) == 1
