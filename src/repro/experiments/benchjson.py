"""Regenerate the ``BENCH_*.json`` artifacts from one run table.

The run table (:mod:`repro.common.runtable`) is the source of truth; the
three JSON files CI and the docs consume are *views* of it, produced
here so their shapes stay byte-compatible with what
``tools/bench_to_json.py`` historically wrote:

* :func:`throughput_report` — ``BENCH_throughput.json``: forward /
  backward / train_step / inference / variation_sweep sections plus the
  hardware-aware train-step rows and overhead ratios;
* :func:`serving_report` — ``BENCH_serving.json``: the 4-config x
  3-load open-loop serving grid;
* :func:`aware_report` — ``BENCH_aware.json``: only the hardware-aware
  train-step rows.

Rows are selected by their identity columns (kind, engine, precision,
workers, hardware, workload, load); when the table carries repetitions,
repetition 0 is the reported one (the historical scripts measured each
cell once).  ``tools/bench_to_json.py --from-table`` is the CLI over
these functions.
"""

from __future__ import annotations

import datetime
import os
import platform

from ..common.benchcfg import (
    BENCH_FORWARD_BATCH,
    BENCH_SIZES,
    BENCH_STEPS,
    BENCH_TRAIN_BATCH,
)
from ..common.errors import ExperimentError
from ..common.runtable import RunTable

__all__ = [
    "aware_report",
    "environment_meta",
    "fleet_row_to_report",
    "serving_report",
    "serving_row_to_report",
    "serving_workload_meta",
    "throughput_report",
]


def environment_meta() -> dict:
    import numpy as np

    return {
        # Provenance stamp on the report artifact, outside every
        # determinism contract (bench JSONs are views, not inputs).
        # repro: disable=determinism
        "generated": datetime.datetime.now(datetime.timezone.utc)
                     .isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _rows(table: RunTable, kind: str, **match) -> list[dict]:
    out = []
    for row in table.rows:
        if row["kind"] != kind or row["repetition"] != 0:
            continue
        if all(row[column] == value for column, value in match.items()):
            out.append(row)
    return out


def _one(table: RunTable, kind: str, **match) -> dict | None:
    rows = _rows(table, kind, **match)
    return rows[0] if rows else None


def _timing(row: dict) -> dict:
    return {
        "min_ms": row["min_ms"],
        "mean_ms": row["mean_ms"],
        "max_ms": row["max_ms"],
        "rounds": row["rounds"],
    }


def _require(row: dict | None, what: str) -> dict:
    if row is None:
        raise ExperimentError(
            f"run table has no row for {what}; run the matching preset "
            "(see repro.experiments.harness.PRESETS) before converting")
    return row


def _worker_sections(table: RunTable, kind: str) -> dict:
    """``serial`` / ``workersN`` rows of a pooled kind, table order."""
    section = {}
    for row in _rows(table, kind):
        if kind == "train_step" and row["hardware"] != "ideal":
            continue  # the aware rows have their own section
        label = ("serial" if row["workers"] == 0
                 else f"workers{row['workers']}")
        section.setdefault(label, _timing(row))
    return section


def _aware_rows(table: RunTable) -> dict:
    """ideal / hardware_aware / hardware_aware_noise + overhead ratios."""
    ideal = _require(
        _one(table, "train_step", workers=0, hardware="ideal"),
        "an ideal serial train_step cell")
    aware = noise = None
    for row in _rows(table, "train_step", workers=0):
        if row["hardware"] == "ideal":
            continue
        if row["hw_variation"] == 0.0 and aware is None:
            aware = row
        elif row["hw_variation"] and noise is None:
            noise = row
    rows = {
        "ideal": _timing(ideal),
        "hardware_aware": _timing(_require(
            aware, "a hardware-aware (variation 0) train_step cell")),
        "hardware_aware_noise": _timing(_require(
            noise, "a hardware-aware-noise train_step cell")),
    }
    base = rows["ideal"]["mean_ms"]
    for key in ("hardware_aware", "hardware_aware_noise"):
        rows[f"overhead_{key}"] = round(rows[key]["mean_ms"] / base, 3)
    return rows


def throughput_report(table: RunTable, meta: dict | None = None) -> dict:
    """``BENCH_throughput.json`` regenerated from ``table``."""
    from .harness import _SWEEP_SAMPLES, _SWEEP_SEEDS, _SWEEP_SIZES
    forward = {
        "fused": _timing(_require(
            _one(table, "forward", engine="fused", precision="float64"),
            "forward fused float64")),
        "fused_float32": _timing(_require(
            _one(table, "forward", engine="fused", precision="float32"),
            "forward fused float32")),
        "step_reference": _timing(_require(
            _one(table, "forward", engine="step", precision="float64"),
            "forward step float64")),
    }
    backward = {
        "fused": _timing(_require(
            _one(table, "backward", engine="fused"), "backward fused")),
        "reference": _timing(_require(
            _one(table, "backward", engine="step"), "backward reference")),
    }
    sweep_meta = {"sizes": list(_SWEEP_SIZES), "samples": _SWEEP_SAMPLES,
                  "n_seeds": _SWEEP_SEEDS}
    report = {
        "meta": {
            **(meta or environment_meta()),
            "shapes": {
                "sizes": list(BENCH_SIZES),
                "steps": BENCH_STEPS,
                "forward_batch": BENCH_FORWARD_BATCH,
                "train_batch": BENCH_TRAIN_BATCH,
                "sweep": sweep_meta,
            },
        },
        "forward": forward,
        "backward": backward,
        "train_step": _worker_sections(table, "train_step"),
        "inference": _worker_sections(table, "inference"),
        "variation_sweep": _worker_sections(table, "variation"),
    }
    report["train_step_hardware_aware"] = _aware_rows(table)
    return report


def serving_row_to_report(row: dict) -> dict:
    """One serving run-table row back in ``ServingReport.to_dict`` shape."""
    failed = row["requests_failed"] or 0
    expired = row["requests_expired"] or 0
    return {
        "offered_rps": row["rate_rps"],
        "duration_s": row["duration_s"],
        "submitted": ((row["completed"] or 0) + (row["rejected"] or 0)
                      + failed + expired),
        "completed": row["completed"],
        "rejected": row["rejected"],
        "ticks": row["ticks"],
        "throughput_rps": row["throughput_rps"],
        "mean_batch": row["mean_batch"],
        "steps_per_s": row["steps_per_s"],
        "latency_ms": {
            "p50": row["p50_ms"],
            "p95": row["p95_ms"],
            "p99": row["p99_ms"],
            "mean": row["mean_ms"],
            "max": row["max_ms"],
        },
        "divergence": row["divergence"],
        "faults_injected": row["faults_injected"] or 0,
        "requests_retried": row["requests_retried"] or 0,
        "requests_expired": expired,
        "requests_failed": failed,
        "recovery_p99_ms": row["recovery_p99_ms"],
        "availability": (1.0 if row["availability"] is None
                         else row["availability"]),
        "queue_wait_p95_ms": row.get("queue_wait_p95_ms"),
        "tick_compute_p95_ms": row.get("tick_compute_p95_ms"),
        # The run table carries no pool snapshot (harness serving cells
        # run in-process); the field exists so the regenerated shape
        # matches ServingReport.to_dict() exactly.
        "pool_stats": None,
    }


def _serving_config_id(row: dict) -> str:
    if row["hardware"] != "ideal":
        kind = "shadow" if str(row["hardware"]).startswith("shadow") \
            else "hardware"
        return f"{kind}_{row['precision']}"
    return f"{row['engine']}_{row['precision']}"


def serving_report(table: RunTable, meta: dict | None = None) -> dict:
    """``BENCH_serving.json`` regenerated from ``table``.

    Only the synthetic workload's rows land here — the historical
    serving benchmark streamed synthetic chunks, and keeping the config
    x load key structure byte-compatible is the point.  Sensor-workload
    rows stay in the table itself.
    """
    serving: dict = {}
    for row in _rows(table, "serving", workload="synthetic"):
        config = _serving_config_id(row)
        serving.setdefault(config, {})
        serving[config].setdefault(row["load"], serving_row_to_report(row))
    # Chaos rows (serving under an injected fault schedule) land in a
    # sibling section keyed by scenario name — their availability /
    # retry / expiry counters are the robustness acceptance numbers.
    chaos: dict = {}
    for row in _rows(table, "chaos"):
        chaos.setdefault(row["scenario"], {})
        chaos[row["scenario"]].setdefault(row["load"],
                                          serving_row_to_report(row))
    # Fleet rows land keyed scenario -> load -> {aggregate, tenants}:
    # the cell's fleet-wide row plus one report per tenant (the rows
    # whose run_id carries the "+<tenant>" suffix).
    fleet: dict = {}
    for row in _rows(table, "fleet"):
        cell = (fleet.setdefault(row["scenario"], {})
                .setdefault(row["load"], {"aggregate": None, "tenants": {}}))
        if row["tenant"] is None:
            if cell["aggregate"] is None:
                cell["aggregate"] = fleet_row_to_report(row)
        else:
            cell["tenants"].setdefault(row["tenant"],
                                       fleet_row_to_report(row))
    if not serving and not chaos and not fleet:
        raise ExperimentError(
            "run table has no synthetic serving rows (and no chaos or "
            "fleet rows); run the 'serving' preset before converting")
    if meta is None:
        meta = {**environment_meta(),
                "workload": serving_workload_meta()}
    report = {"meta": meta, "serving": serving}
    if chaos:
        report["chaos"] = chaos
    if fleet:
        report["fleet"] = fleet
    return report


def fleet_row_to_report(row: dict) -> dict:
    """One fleet run-table row (aggregate or per-tenant) as a report
    dict: the :func:`serving_row_to_report` shape plus the fleet
    columns.  Per-tenant rows carry only their own ``quota_rejected``;
    the replica/canary cells are aggregate-row facts and stay ``None``
    there."""
    report = serving_row_to_report(row)
    report.update(
        tenant=row["tenant"],
        replicas=row["replicas"],
        canary_weight=row["canary_weight"],
        canary_share=row["canary_share"],
        quota_rejected=row["quota_rejected"],
        misroutes=row["misroutes"],
    )
    return report


def serving_workload_meta() -> dict:
    """The ``meta.workload`` block of ``BENCH_serving.json`` — the fixed
    knobs of the canonical serving grid
    (:func:`repro.experiments.harness.serving_scenarios`)."""
    from .harness import serving_scenarios

    scenario = serving_scenarios()[0]
    hardware = next(spec for sc in serving_scenarios()
                    for spec in sc.hardware
                    if spec is not None and not spec.shadow)
    return {
        "sizes": list(scenario.sizes),
        "sessions": scenario.sessions,
        "chunk_steps": scenario.chunk_steps,
        "max_batch": scenario.max_batch,
        "max_wait_ms": scenario.max_wait_ms,
        "queue_limit": scenario.queue_limit,
        "spike_density": scenario.spike_density,
        "hardware_profile": {"bits": hardware.bits,
                             "variation": hardware.variation,
                             "seed": hardware.seed},
        "arrivals": "poisson open-loop, virtual arrival clock + measured "
                    "tick compute (see repro/serve/loadgen.py)",
    }


def aware_report(table: RunTable, meta: dict | None = None) -> dict:
    """``BENCH_aware.json`` regenerated from ``table``."""
    rows = _aware_rows(table)
    noise_row = None
    for row in _rows(table, "train_step", workers=0):
        if row["hardware"] != "ideal" and row["hw_variation"]:
            noise_row = row
            break
    operating_point = {
        "bits": noise_row["hw_bits"] if noise_row else None,
        "variation": noise_row["hw_variation"] if noise_row else None,
    }
    return {
        "meta": {
            **(meta or environment_meta()),
            "shapes": {"sizes": list(BENCH_SIZES), "steps": BENCH_STEPS,
                       "train_batch": BENCH_TRAIN_BATCH},
            "operating_point": operating_point,
        },
        "train_step": rows,
    }
