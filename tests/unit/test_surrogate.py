"""Unit tests for repro.core.surrogate (paper eq. 14)."""

import numpy as np
import pytest

from repro.core.surrogate import (
    PAPER_SIGMA,
    ErfcSurrogate,
    RectangularSurrogate,
    SigmoidSurrogate,
    SurrogateGradient,
    TriangleSurrogate,
    get_surrogate,
)

ALL_SURROGATES = [ErfcSurrogate(), SigmoidSurrogate(), TriangleSurrogate(),
                  RectangularSurrogate()]


class TestErfcSurrogate:
    def test_paper_sigma_peaks_at_one(self):
        # With sigma = 1/sqrt(2*pi) the pseudo-derivative at 0 equals 1.
        surrogate = ErfcSurrogate(sigma=PAPER_SIGMA)
        assert surrogate.derivative(np.array(0.0)) == pytest.approx(1.0)

    def test_derivative_is_gaussian(self):
        surrogate = ErfcSurrogate(sigma=0.5)
        x = np.linspace(-3, 3, 41)
        expected = np.exp(-x**2 / (2 * 0.25)) / (np.sqrt(2 * np.pi) * 0.5)
        np.testing.assert_allclose(surrogate.derivative(x), expected)

    def test_smooth_step_limits(self):
        surrogate = ErfcSurrogate()
        assert surrogate.smooth_step(np.array(-50.0)) == pytest.approx(0.0)
        assert surrogate.smooth_step(np.array(50.0)) == pytest.approx(1.0)
        assert surrogate.smooth_step(np.array(0.0)) == pytest.approx(0.5)

    def test_smooth_step_derivative_consistency(self):
        """d/dx smooth_step == derivative (central finite differences)."""
        surrogate = ErfcSurrogate()
        x = np.linspace(-2, 2, 21)
        h = 1e-6
        fd = (surrogate.smooth_step(x + h) - surrogate.smooth_step(x - h)) / (2 * h)
        np.testing.assert_allclose(surrogate.derivative(x), fd, rtol=1e-6,
                                   atol=1e-8)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            ErfcSurrogate(sigma=0.0)


@pytest.mark.parametrize("surrogate", ALL_SURROGATES,
                         ids=lambda s: s.name)
class TestAllSurrogates:
    def test_derivative_nonnegative(self, surrogate):
        x = np.linspace(-5, 5, 101)
        assert np.all(surrogate.derivative(x) >= 0.0)

    def test_derivative_symmetric(self, surrogate):
        x = np.linspace(0.01, 4, 50)
        np.testing.assert_allclose(surrogate.derivative(x),
                                   surrogate.derivative(-x))

    def test_derivative_peaks_at_zero(self, surrogate):
        x = np.linspace(-3, 3, 301)
        values = surrogate.derivative(x)
        assert values[150] == pytest.approx(values.max())

    def test_smooth_step_monotone(self, surrogate):
        x = np.linspace(-3, 3, 200)
        steps = np.diff(surrogate.smooth_step(x))
        assert np.all(steps >= -1e-12)

    def test_smooth_step_bounded(self, surrogate):
        x = np.linspace(-10, 10, 200)
        values = surrogate.smooth_step(x)
        assert values.min() >= -1e-9
        assert values.max() <= 1.0 + 1e-9

    def test_integral_matches_analytic_mass(self, surrogate):
        """The pseudo-derivative's total mass matches its analytic value
        (1 for the delta-normalised kernels; 2/beta for SuperSpike's fast
        sigmoid, which is deliberately unnormalised)."""
        x = np.linspace(-30, 30, 120001)
        integral = np.trapezoid(surrogate.derivative(x), x)
        expected = 2.0 / surrogate.beta if surrogate.name == "sigmoid" else 1.0
        assert integral == pytest.approx(expected, rel=0.02)

    def test_callable_interface(self, surrogate):
        x = np.array([0.0, 1.0])
        np.testing.assert_allclose(surrogate(x), surrogate.derivative(x))


class TestRegistry:
    def test_lookup_all_names(self):
        for name in ("erfc", "sigmoid", "triangle", "rectangular"):
            assert isinstance(get_surrogate(name), SurrogateGradient)

    def test_kwargs_forwarded(self):
        surrogate = get_surrogate("erfc", sigma=0.3)
        assert surrogate.sigma == 0.3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            get_surrogate("relu")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SigmoidSurrogate(beta=-1.0)
        with pytest.raises(ValueError):
            TriangleSurrogate(width=0.0)
        with pytest.raises(ValueError):
            RectangularSurrogate(half_width=-0.5)
