"""Unit tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.core import CrossEntropyRateLoss, SpikingNetwork, TrainerConfig
from repro.core.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ScheduledTrainer,
    StepSchedule,
    WarmupSchedule,
)


class TestConstant:
    def test_always_one(self):
        schedule = ConstantSchedule()
        assert all(schedule(e) == 1.0 for e in range(1, 20))

    def test_epoch_one_based(self):
        with pytest.raises(ValueError):
            ConstantSchedule()(0)


class TestStep:
    def test_decay_boundaries(self):
        schedule = StepSchedule(step_size=3, gamma=0.5)
        assert schedule(1) == 1.0
        assert schedule(3) == 1.0
        assert schedule(4) == 0.5
        assert schedule(7) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(step_size=0)
        with pytest.raises(ValueError):
            StepSchedule(step_size=2, gamma=0.0)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineSchedule(total_epochs=10, floor=0.1)
        assert schedule(1) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        schedule = CosineSchedule(total_epochs=20)
        values = [schedule(e) for e in range(1, 21)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_past_horizon(self):
        schedule = CosineSchedule(total_epochs=5, floor=0.2)
        assert schedule(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineSchedule(total_epochs=0)
        with pytest.raises(ValueError):
            CosineSchedule(total_epochs=5, floor=1.0)


class TestWarmup:
    def test_linear_ramp(self):
        schedule = WarmupSchedule(warmup_epochs=4)
        np.testing.assert_allclose(
            [schedule(e) for e in (1, 2, 3, 4)],
            [1 / 5, 2 / 5, 3 / 5, 4 / 5])
        assert schedule(5) == 1.0

    def test_delegates_after_warmup(self):
        schedule = WarmupSchedule(2, after=StepSchedule(1, gamma=0.5))
        assert schedule(3) == 1.0        # after-epoch 1
        assert schedule(4) == 0.5        # after-epoch 2

    def test_zero_warmup(self):
        schedule = WarmupSchedule(0)
        assert schedule(1) == 1.0


class TestScheduledTrainer:
    def _data(self):
        rng = np.random.default_rng(0)
        x = (rng.random((16, 10, 6)) < 0.4).astype(float)
        y = np.arange(16) % 2
        return x, y

    def test_lr_follows_schedule(self):
        x, y = self._data()
        net = SpikingNetwork((6, 5, 2), rng=0)
        for layer in net.layers:
            layer.weight *= 8.0
        trainer = ScheduledTrainer(
            net, CrossEntropyRateLoss(),
            TrainerConfig(epochs=3, batch_size=8, learning_rate=1e-2),
            schedule=StepSchedule(step_size=1, gamma=0.5), rng=1)
        expected = [1e-2, 5e-3, 2.5e-3]
        for lr in expected:
            trainer.train_epoch(x, y)
            assert trainer.current_lr == pytest.approx(lr)

    def test_default_schedule_is_constant(self):
        x, y = self._data()
        net = SpikingNetwork((6, 5, 2), rng=0)
        trainer = ScheduledTrainer(
            net, CrossEntropyRateLoss(),
            TrainerConfig(epochs=2, batch_size=8, learning_rate=3e-3),
            rng=1)
        trainer.train_epoch(x, y)
        assert trainer.current_lr == pytest.approx(3e-3)

    def test_fit_still_works(self):
        x, y = self._data()
        net = SpikingNetwork((6, 5, 2), rng=0)
        for layer in net.layers:
            layer.weight *= 8.0
        trainer = ScheduledTrainer(
            net, CrossEntropyRateLoss(),
            TrainerConfig(epochs=4, batch_size=8, learning_rate=5e-3),
            schedule=CosineSchedule(total_epochs=4), rng=1)
        history = trainer.fit(x, y)
        assert len(history) == 4
