"""Command-line front end: ``python -m repro.analysis [...]``.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage /
internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import (
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)
from .rules import RULES

__all__ = ["main"]

#: cli.py -> lint -> analysis -> repro -> src -> repository root.
DEFAULT_ROOT = Path(__file__).resolve().parents[4]
DEFAULT_BASELINE = "tools/lint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-aware static analysis for this repository "
                    "(see docs/static_analysis.md).")
    parser.add_argument("--root", default=str(DEFAULT_ROOT),
                        help="repository root to scan "
                             "(default: auto-detected)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} under --root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report grandfathered findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also list suppressed findings (text mode)")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id:16s} [{rule.severity}] {rule.summary}")
        return 0

    root = Path(args.root).resolve()
    if not root.exists():
        print(f"error: root {root} does not exist", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline) if args.baseline \
        else root / DEFAULT_BASELINE

    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = load_baseline(baseline_path) or None

    result = run_lint(root=root, baseline=baseline)

    if args.write_baseline:
        count = write_baseline(baseline_path, result)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    output = render_json(result) if args.fmt == "json" \
        else render_text(result, verbose=args.verbose)
    sys.stdout.write(output)
    return 0 if result.clean and not result.stale_baseline else 1


if __name__ == "__main__":
    sys.exit(main())
