"""Property tests for the training algorithm: for *random* networks,
inputs and losses, the hand-derived BPTT must agree with the independent
autograd reference to machine precision."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    add,
    cross_entropy_with_logits,
    run_adaptive_reference,
    run_hard_reset_reference,
    scale,
    van_rossum_loss,
)
from repro.common.rng import RandomState
from repro.core import CrossEntropyRateLoss, SpikingNetwork, VanRossumLoss, backward
from repro.core.neurons import NeuronParameters

network_shapes = st.sampled_from([
    (4, 3), (5, 4, 3), (6, 5, 4, 3), (3, 6, 2),
])


def _setup(shape, seed, steps, rate, kind="adaptive", theta=1.0):
    params = NeuronParameters(theta=theta)
    net = SpikingNetwork(shape, params=params, neuron_kind=kind, rng=seed)
    for layer in net.layers:
        layer.weight *= 8.0
    rng = RandomState(seed + 1000)
    x = (rng.random((2, steps, shape[0])) < rate).astype(np.float64)
    return net, x


def _ad_weights(net):
    return [Tensor(l.weight.T.copy(), requires_grad=True) for l in net.layers]


def _count_logits(outputs, count_scale):
    counts = None
    for out in outputs:
        counts = out if counts is None else add(counts, out)
    return scale(counts, count_scale)


@given(
    shape=network_shapes,
    seed=st.integers(min_value=0, max_value=50),
    steps=st.integers(min_value=2, max_value=16),
    rate=st.floats(min_value=0.1, max_value=0.7),
    theta=st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=25, deadline=None)
def test_adaptive_bptt_matches_autograd(shape, seed, steps, rate, theta):
    net, x = _setup(shape, seed, steps, rate, theta=theta)
    labels = RandomState(seed).integers(0, shape[-1], 2)
    out, record = net.run(x, record=True)
    loss = CrossEntropyRateLoss()
    value, grad_out = loss.value_and_grad(out, labels)
    manual = backward(net, record, grad_out, mode="exact")

    weights = _ad_weights(net)
    ad_out = run_adaptive_reference(
        weights, x, params=net.params, surrogate=net.layers[0].surrogate)
    stacked = np.stack([o.data for o in ad_out[-1]], axis=1)
    np.testing.assert_array_equal(out, stacked)
    ad_loss = cross_entropy_with_logits(
        _count_logits(ad_out[-1], 10.0 / steps), labels)
    ad_loss.backward()
    for m, t in zip(manual.weight_grads, weights):
        np.testing.assert_allclose(m, t.grad.T, atol=1e-10)


@given(
    shape=network_shapes,
    seed=st.integers(min_value=0, max_value=50),
    steps=st.integers(min_value=2, max_value=14),
)
@settings(max_examples=15, deadline=None)
def test_hard_reset_bptt_matches_autograd(shape, seed, steps):
    net, x = _setup(shape, seed, steps, 0.4, kind="hard_reset")
    labels = RandomState(seed).integers(0, shape[-1], 2)
    out, record = net.run(x, record=True)
    loss = CrossEntropyRateLoss()
    _, grad_out = loss.value_and_grad(out, labels)
    manual = backward(net, record, grad_out)

    weights = _ad_weights(net)
    ad_out = run_hard_reset_reference(
        weights, x, params=net.params, surrogate=net.layers[0].surrogate)
    ad_loss = cross_entropy_with_logits(
        _count_logits(ad_out[-1], 10.0 / steps), labels)
    ad_loss.backward()
    for m, t in zip(manual.weight_grads, weights):
        np.testing.assert_allclose(m, t.grad.T, atol=1e-10)


@given(
    seed=st.integers(min_value=0, max_value=50),
    steps=st.integers(min_value=3, max_value=14),
)
@settings(max_examples=15, deadline=None)
def test_van_rossum_bptt_matches_autograd(seed, steps):
    net, x = _setup((5, 4, 3), seed, steps, 0.4)
    rng = RandomState(seed + 7)
    targets = (rng.random((2, steps, 3)) < 0.3).astype(np.float64)
    out, record = net.run(x, record=True)
    loss = VanRossumLoss()
    value, grad_out = loss.value_and_grad(out, targets)
    manual = backward(net, record, grad_out, mode="exact")

    weights = _ad_weights(net)
    ad_out = run_adaptive_reference(
        weights, x, params=net.params, surrogate=net.layers[0].surrogate)
    ad_loss = van_rossum_loss(ad_out[-1], targets)
    np.testing.assert_allclose(float(ad_loss.data), value, rtol=1e-10)
    ad_loss.backward()
    for m, t in zip(manual.weight_grads, weights):
        np.testing.assert_allclose(m, t.grad.T, atol=1e-9)


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_gradients_vanish_for_silent_loss(seed):
    """Zero loss gradient must produce exactly zero weight gradients."""
    net, x = _setup((4, 3, 2), seed, 8, 0.4)
    out, record = net.run(x, record=True)
    result = backward(net, record, np.zeros_like(out))
    for g in result.weight_grads:
        np.testing.assert_array_equal(g, 0.0)
    np.testing.assert_array_equal(result.input_grad, 0.0)


@given(
    seed=st.integers(min_value=0, max_value=50),
    scale_factor=st.floats(min_value=0.5, max_value=2.0),
)
@settings(max_examples=20, deadline=None)
def test_gradient_linear_in_output_grad(seed, scale_factor):
    """backward is linear in grad_outputs (it is a linear adjoint map)."""
    net, x = _setup((4, 3, 2), seed, 8, 0.4)
    out, record = net.run(x, record=True)
    rng = RandomState(seed)
    grad_out = rng.normal(size=out.shape)
    base = backward(net, record, grad_out)
    scaled = backward(net, record, grad_out * scale_factor)
    for g1, g2 in zip(base.weight_grads, scaled.weight_grads):
        np.testing.assert_allclose(g2, scale_factor * g1, rtol=1e-9,
                                   atol=1e-12)
