#!/usr/bin/env python
"""Chaos gates: pool self-healing bitwise recovery + serving availability.

``make chaos-smoke`` (and the ``chaos-smoke`` CI job) runs two seeded,
deterministic gates over the fault-injection plane
(:mod:`repro.common.faults`, docs/robustness.md):

1. **Pool recovery gate** — a 2-worker pool under a seeded crash+hang
   schedule (worker 0 crashes on its first dispatch, worker 1 hangs on
   its second) must heal — respawn the workers, retry the in-flight
   shards — and return ``run_sharded`` / ``grad_shards`` results
   bitwise-identical to a fault-free pool.
2. **Serving availability gate** — the ``chaos`` scenario preset
   (:func:`repro.experiments.harness.chaos_scenarios`) must complete
   with ``availability >= 0.95`` on every row, lose no tickets
   (completed + failed + expired + rejected == requests), and report
   zero *unrecovered* errors: every failed request must trace back to
   an injected fault (``requests_failed <= faults_injected``).
3. **Fleet replica-kill gate** — a 2-replica
   :class:`~repro.serve.Fleet` loses replica 0 mid-load
   (``fleet.replica.down``); its sessions must re-route to the
   survivor or fail cleanly, fleet-wide availability must hold the
   same ``>= 0.95`` floor, and the fleet's own accounting tripwire
   (:meth:`~repro.serve.Fleet.check_invariants`, run at drain by the
   load generator) must pass over the degraded fleet.

The chaos run table is written to ``--table`` (default
``run_table.csv``) so CI can upload it as the regression artifact.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.common import faults  # noqa: E402
from repro.common.benchcfg import bench_inputs, bench_network  # noqa: E402

AVAILABILITY_FLOOR = 0.95

#: Worker 0 dies on its first command, worker 1 stops answering on its
#: second; the ``generation: 0`` scope keeps the respawned workers
#: healthy so the supervisor's bounded retry converges.
CRASH_HANG_RULES = (
    faults.FaultRule("pool.worker.crash", nth=(1,),
                     where={"worker": 0, "generation": 0}),
    faults.FaultRule("pool.worker.hang", nth=(2,),
                     where={"worker": 1, "generation": 0}, payload=60.0),
)

#: Seconds a dispatch may wait on a silent worker before the supervisor
#: declares it hung — the wall-clock cost of the hang half of the gate.
HANG_TIMEOUT_S = 5.0


def pool_gate() -> list[str]:
    """Bitwise self-healing of run_sharded and grad_shards."""
    from repro.core import CrossEntropyRateLoss
    from repro.runtime.parallel import shard_slices
    from repro.runtime.pool import WorkerPool

    net = bench_network(sizes=(64, 32, 10), seed=0)
    x = bench_inputs(16, n_in=64)
    labels = np.arange(16) % 10
    loss = CrossEntropyRateLoss()
    slices = shard_slices(16, 2)

    def snapshot(shards):
        # Gradient arrays are views into the pool's shared-memory arena;
        # copy them out so they survive pool.close().
        return [(lv, n, [g.copy() for g in grads])
                for lv, n, grads in shards]

    clean = WorkerPool(net, workers=2, loss=loss)
    try:
        ref_outputs = clean.run_sharded(x, batch_size=4).copy()
        ref_shards = snapshot(clean.grad_shards(x, labels, slices))
    finally:
        clean.close()

    plan = faults.FaultPlan(CRASH_HANG_RULES, seed=7)
    with faults.active(plan):
        pool = WorkerPool(net, workers=2, loss=loss)
    try:
        outputs = pool.run_sharded(x, batch_size=4,
                                   timeout=HANG_TIMEOUT_S).copy()
        shards = snapshot(pool.grad_shards(x, labels, slices,
                                           timeout=HANG_TIMEOUT_S))
        restarts = pool.stats["restarts"]
        retries = pool.stats["retries"]
    finally:
        pool.close()

    errors = []
    if not np.array_equal(outputs, ref_outputs):
        errors.append("run_sharded outputs diverged from the fault-free "
                      "pool after healing")
    if len(shards) != len(ref_shards):
        errors.append(f"grad_shards returned {len(shards)} shards, "
                      f"expected {len(ref_shards)}")
    else:
        for i, ((lv, n, grads), (rlv, rn, rgrads)) in enumerate(
                zip(shards, ref_shards)):
            if lv != rlv or n != rn or len(grads) != len(rgrads) \
                    or any(not np.array_equal(g, r)
                           for g, r in zip(grads, rgrads)):
                errors.append(f"grad shard {i} diverged from the "
                              "fault-free pool after healing")
    if restarts < 2:
        errors.append(f"expected the crash and the hang to each force a "
                      f"respawn (>= 2 restarts), got {restarts}")
    if retries < 1:
        errors.append(f"expected at least one retried in-flight shard, "
                      f"got {retries}")
    print(f"pool gate: restarts={restarts} retries={retries} "
          f"bitwise={'ok' if not errors else 'FAIL'}")
    return errors


def fleet_gate() -> list[str]:
    """Replica kill mid-load: re-route or fail cleanly, floor holds."""
    from repro.core import SpikingNetwork
    from repro.serve import Fleet
    from repro.serve.loadgen import TenantLoad, open_loop_fleet

    net = SpikingNetwork((24, 20, 12), rng=1)
    for layer in net.layers:
        layer.weight *= 5.0
    #: Replica 0 dies on its first housekeeping visit once traffic is
    #: flowing; ``times=1`` keeps the survivor alive so re-routed
    #: sessions land somewhere.
    plan = faults.FaultPlan(
        (faults.FaultRule("fleet.replica.down", probability=1.0,
                          where={"replica": 0}, times=1),),
        seed=7)
    fleet = Fleet(net, replicas=2, engine="step", max_batch=8,
                  max_wait_ms=0.5, queue_limit=64, seed=9)
    try:
        with faults.active(plan):
            # open_loop_fleet reconnects StateError'd sessions through
            # the router and runs fleet.check_invariants() at drain —
            # an accounting hole in the degraded fleet raises here.
            report = open_loop_fleet(
                fleet,
                tenants=(TenantLoad("t0", sessions=6),),
                requests=300, rate_rps=600.0, chunk_steps=6, rng=9)
        stats = fleet.stats
    finally:
        fleet.close()

    errors = []
    aggregate = report.aggregate
    if report.replicas_down != 1:
        errors.append(f"expected exactly one replica kill, counted "
                      f"{report.replicas_down}")
    if report.live_replicas != 1:
        errors.append(f"expected one surviving replica, fleet reports "
                      f"{report.live_replicas} live")
    if aggregate.availability is None \
            or aggregate.availability < AVAILABILITY_FLOOR:
        errors.append(f"fleet availability {aggregate.availability} "
                      f"< {AVAILABILITY_FLOOR} after a replica kill")
    if aggregate.completed == 0:
        errors.append("no requests completed on the surviving replica")
    resolved = (aggregate.completed + aggregate.rejected
                + aggregate.requests_failed + aggregate.requests_expired)
    if resolved != aggregate.submitted:
        errors.append(
            f"lost tickets after the kill — completed "
            f"{aggregate.completed} + rejected {aggregate.rejected} + "
            f"failed {aggregate.requests_failed} + expired "
            f"{aggregate.requests_expired} != submitted "
            f"{aggregate.submitted}")
    print(f"fleet gate: replicas_down={report.replicas_down} "
          f"lost_sessions={stats['lost_sessions']} "
          f"availability={aggregate.availability:.4f} "
          f"{'ok' if not errors else 'FAIL'}")
    return errors


def serving_gate(table_path: str) -> list[str]:
    """Availability / accounting floors over the chaos preset."""
    from repro.experiments.harness import chaos_scenarios, run_scenarios

    table = run_scenarios(chaos_scenarios(), log=print)
    table.write_csv(table_path)
    print(f"wrote {table_path} ({len(table)} rows)")

    rows = table.by_kind("chaos")
    errors = []
    if not rows:
        errors.append("chaos preset produced no chaos rows")
    for row in rows:
        run_id = row["run_id"]
        completed = row["completed"] or 0
        failed = row["requests_failed"] or 0
        expired = row["requests_expired"] or 0
        rejected = row["rejected"] or 0
        injected = row["faults_injected"] or 0
        resolved = completed + failed + expired + rejected
        if resolved != row["requests"]:
            errors.append(
                f"{run_id}: lost tickets — completed {completed} + failed "
                f"{failed} + expired {expired} + rejected {rejected} != "
                f"requests {row['requests']}")
        if row["availability"] is None \
                or row["availability"] < AVAILABILITY_FLOOR:
            errors.append(f"{run_id}: availability "
                          f"{row['availability']} < {AVAILABILITY_FLOOR}")
        if failed > injected:
            errors.append(
                f"{run_id}: {failed} failed requests but only {injected} "
                f"injected faults — some errors were not injected "
                "(unrecovered server fault)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--table", default="run_table.csv",
                        help="chaos run-table CSV output path")
    args = parser.parse_args(argv)
    errors = pool_gate()
    errors += fleet_gate()
    errors += serving_gate(args.table)
    if errors:
        print(f"\nchaos-smoke: {len(errors)} gate failure(s)")
        for error in errors:
            print(f"  FAIL {error}")
        return 1
    print("\nchaos-smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
