"""Dataset property check — timing information in synthetic SHD.

The paper's Table II SHD argument requires the dataset's class
information to live in spike *timing* (its ref. [3] reports exactly this
for real SHD).  Verified here with a time-shuffle control: identical
networks trained on original vs time-shuffled data (per-channel counts
preserved) — the original must win clearly.
"""

from conftest import bench_experiment


def test_ablation_timing(benchmark):
    result = bench_experiment(benchmark, "ablation-timing")
    summary = result.summary
    chance = 1.0 / 20.0

    # Original data trains well above chance.
    assert summary["acc_original"] > 5 * chance

    # Destroying timing (while preserving rate codes) must not *help*.
    # Measured honestly: on the synthetic substitute the purely-temporal
    # share of the class information is a few points (less dominant than
    # Cramer et al. report for real SHD) — which is also why our
    # HR-impulse drop in Table II is smaller than the paper's 59 pts.
    # EXPERIMENTS.md discusses this limitation.
    assert summary["acc_original"] >= summary["acc_shuffled"] - 0.03
    gap = summary["acc_original"] - summary["acc_shuffled"]
    print(f"\ntiming information (original - shuffled): {100 * gap:.2f} pts")
