"""Autograd reference implementation of the paper's network (eqs. 6-11).

This module rebuilds the *exact same* unrolled computation as
:class:`repro.core.network.SpikingNetwork` + :func:`repro.core.backprop.backward`,
but using the tape-based engine, so the hand-derived gradients can be
verified mechanically.  Two spike relaxations are supported:

* ``smooth=False`` — Heaviside forward with surrogate backward (the
  training semantics).  Gradients must match the manual BPTT to machine
  precision.
* ``smooth=True`` — the surrogate's ``smooth_step`` replaces the Heaviside
  *in the forward as well*, making the whole computation differentiable so
  autograd itself can be validated against finite differences.
"""

from __future__ import annotations

import numpy as np

from ..core.neurons import NeuronParameters
from ..core.surrogate import ErfcSurrogate, SurrogateGradient
from .ops import add, matmul, scale, smooth_spike, spike, sub
from .tensor import Tensor

__all__ = ["run_adaptive_reference", "run_hard_reset_reference"]


def run_adaptive_reference(weights: list[Tensor], inputs: np.ndarray,
                           params: NeuronParameters | None = None,
                           surrogate: SurrogateGradient | None = None,
                           smooth: bool = False) -> list[list[Tensor]]:
    """Unroll the adaptive-threshold network in the autograd graph.

    Parameters
    ----------
    weights:
        One tensor per layer with shape ``(n_in, n_out)`` — note this is
        the *transpose* of the core library's ``(n_out, n_in)`` layout so
        the graph uses plain ``k @ W``.
    inputs:
        Constant input spikes, shape (batch, T, n_input).
    params, surrogate:
        Model hyper-parameters (Table I defaults).
    smooth:
        Use the fully smooth relaxation (see module docstring).

    Returns
    -------
    list of per-layer lists of per-step output tensors
        ``result[-1][t]`` is the output layer's spike tensor at step ``t``.
    """
    params = params or NeuronParameters()
    surrogate = surrogate or ErfcSurrogate()
    spike_fn = smooth_spike if smooth else spike
    alpha = float(np.exp(-1.0 / params.tau))
    beta = float(np.exp(-1.0 / params.tau_r))
    inputs = np.asarray(inputs, dtype=np.float64)
    batch, steps, _ = inputs.shape

    n_layers = len(weights)
    outputs: list[list[Tensor]] = [[] for _ in range(n_layers)]
    k_state: list[Tensor | None] = [None] * n_layers
    h_state: list[Tensor | None] = [None] * n_layers
    prev_out: list[Tensor | None] = [None] * n_layers

    for t in range(steps):
        spikes_below: Tensor | np.ndarray = inputs[:, t, :]
        for layer, weight in enumerate(weights):
            if not isinstance(spikes_below, Tensor):
                spikes_below = Tensor(spikes_below)
            # k[t] = alpha*k[t-1] + O_below[t]        (eq. 9)
            if k_state[layer] is None:
                k_state[layer] = spikes_below
            else:
                k_state[layer] = add(scale(k_state[layer], alpha), spikes_below)
            # g[t] = k[t] @ W                          (eq. 7)
            g = matmul(k_state[layer], weight)
            # h[t] = beta*h[t-1] + O[t-1]; h[-1] = O[-1] = 0 => h[0] = 0.
            if prev_out[layer] is None:
                h = Tensor(np.zeros_like(g.data))      # constant zero
            else:
                h = add(scale(h_state[layer], beta), prev_out[layer])
            h_state[layer] = h
            # v[t] = g - theta*h                       (eq. 6)
            v = sub(g, scale(h, params.theta))
            out = spike_fn(v, params.v_th, surrogate)  # eqs. 10-11
            outputs[layer].append(out)
            prev_out[layer] = out
            spikes_below = out
    return outputs


def run_hard_reset_reference(weights: list[Tensor], inputs: np.ndarray,
                             params: NeuronParameters | None = None,
                             surrogate: SurrogateGradient | None = None,
                             smooth: bool = False) -> list[list[Tensor]]:
    """Unroll the hard-reset baseline (eq. 1, reset gate detached).

    Matches :func:`repro.core.backprop._backward_hard_reset` semantics: the
    multiplicative reset gate ``(1 - O[t])`` is a *constant* in the graph
    (built from ``out.data``, not ``out``), exactly like the manual code.
    """
    params = params or NeuronParameters()
    surrogate = surrogate or ErfcSurrogate()
    spike_fn = smooth_spike if smooth else spike
    alpha = float(np.exp(-1.0 / params.tau))
    inputs = np.asarray(inputs, dtype=np.float64)
    batch, steps, _ = inputs.shape

    n_layers = len(weights)
    outputs: list[list[Tensor]] = [[] for _ in range(n_layers)]
    v_state: list[Tensor | None] = [None] * n_layers

    for t in range(steps):
        spikes_below: Tensor | np.ndarray = inputs[:, t, :]
        for layer, weight in enumerate(weights):
            drive = matmul(
                spikes_below if isinstance(spikes_below, Tensor)
                else Tensor(spikes_below),
                weight,
            )
            if v_state[layer] is None:
                v_pre = drive
            else:
                v_pre = add(scale(v_state[layer], alpha), drive)
            out = spike_fn(v_pre, params.v_th, surrogate)
            # Detached reset gate: gradient does not flow through (1 - O).
            gate = 1.0 - out.data
            v_state[layer] = scale_by_constant(v_pre, gate)
            outputs[layer].append(out)
            spikes_below = out
    return outputs


def scale_by_constant(tensor: Tensor, constant: np.ndarray) -> Tensor:
    """Elementwise multiply by a *constant* array (no gradient to it)."""
    from .ops import _make

    constant = np.asarray(constant, dtype=np.float64)

    def backward(grad):
        if tensor.requires_grad:
            tensor._accumulate(grad * constant)

    return _make(tensor.data * constant, (tensor,), backward)
