"""Unit tests for SpikeDataset and the three dataset generators."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.data import (
    AssociationConfig,
    SpikeDataset,
    SyntheticNMNISTConfig,
    SyntheticSHDConfig,
    generate_association,
    generate_nmnist,
    generate_shd,
    glyph_to_target,
)
from repro.data.glyphs import render_digit


@pytest.fixture(scope="module")
def tiny_nmnist():
    return generate_nmnist(SyntheticNMNISTConfig(n_per_class=2, steps=24),
                           rng=0)


@pytest.fixture(scope="module")
def tiny_shd():
    return generate_shd(SyntheticSHDConfig(n_per_class=1, steps=60,
                                           n_channels=128), rng=0)


class TestSpikeDataset:
    def test_validation(self):
        with pytest.raises(DatasetError):
            SpikeDataset(np.zeros((3, 4)), np.zeros(3))         # not 3-D
        with pytest.raises(DatasetError):
            SpikeDataset(np.zeros((3, 4, 2)), np.zeros(5))      # misaligned
        with pytest.raises(DatasetError):
            SpikeDataset(np.zeros((3, 4, 2)), np.zeros((3, 2)))  # bad rank

    def test_split_deterministic_and_disjoint(self, tiny_nmnist):
        train1, test1 = tiny_nmnist.split(0.75, rng=1)
        train2, test2 = tiny_nmnist.split(0.75, rng=1)
        np.testing.assert_array_equal(train1.inputs, train2.inputs)
        assert len(train1) + len(test1) == len(tiny_nmnist)
        assert len(train1) == round(0.75 * len(tiny_nmnist))

    def test_split_bad_fraction(self, tiny_nmnist):
        with pytest.raises(DatasetError):
            tiny_nmnist.split(0.0)
        with pytest.raises(DatasetError):
            tiny_nmnist.split(1.0)

    def test_batches_cover_everything(self, tiny_nmnist):
        seen = 0
        for x, y in tiny_nmnist.batches(batch_size=7):
            assert x.shape[0] == y.shape[0]
            seen += x.shape[0]
        assert seen == len(tiny_nmnist)

    def test_batches_shuffle(self, tiny_nmnist):
        plain = np.concatenate(
            [y for _, y in tiny_nmnist.batches(4)])
        shuffled = np.concatenate(
            [y for _, y in tiny_nmnist.batches(4, shuffle=True, rng=3)])
        assert not np.array_equal(plain, shuffled)
        np.testing.assert_array_equal(np.sort(plain), np.sort(shuffled))

    def test_save_load_roundtrip(self, tiny_nmnist, tmp_path):
        path = str(tmp_path / "ds")
        tiny_nmnist.save(path)
        loaded = SpikeDataset.load(path)
        np.testing.assert_array_equal(loaded.inputs, tiny_nmnist.inputs)
        np.testing.assert_array_equal(loaded.targets, tiny_nmnist.targets)
        assert loaded.class_names == tiny_nmnist.class_names

    def test_properties(self, tiny_nmnist):
        assert tiny_nmnist.is_classification
        assert tiny_nmnist.n_classes == 10
        assert tiny_nmnist.n_steps == 24
        assert tiny_nmnist.n_channels == 34 * 34 * 2


class TestNMNISTGenerator:
    def test_shapes_and_labels(self, tiny_nmnist):
        assert len(tiny_nmnist) == 20
        assert tiny_nmnist.inputs.dtype == np.float32
        counts = np.bincount(tiny_nmnist.targets, minlength=10)
        np.testing.assert_array_equal(counts, 2)

    def test_events_present_and_bounded(self, tiny_nmnist):
        assert tiny_nmnist.inputs.sum() > 0
        assert tiny_nmnist.inputs.max() <= 4.0   # cap + noise

    def test_deterministic(self):
        config = SyntheticNMNISTConfig(n_per_class=1, steps=12)
        a = generate_nmnist(config, rng=5)
        b = generate_nmnist(config, rng=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_metadata_provenance(self, tiny_nmnist):
        assert "config" in tiny_nmnist.metadata
        assert tiny_nmnist.metadata["seed"] == 0


class TestSHDGenerator:
    def test_twenty_classes(self, tiny_shd):
        assert len(tiny_shd) == 20
        assert tiny_shd.n_classes == 20
        assert len(tiny_shd.class_names) == 20
        assert tiny_shd.class_names[0].startswith("en")
        assert tiny_shd.class_names[10].startswith("ge")

    def test_sparse_spikes(self, tiny_shd):
        density = tiny_shd.inputs.mean()
        assert 0.002 < density < 0.25

    def test_every_sample_has_spikes(self, tiny_shd):
        per_sample = tiny_shd.inputs.sum(axis=(1, 2))
        assert np.all(per_sample > 0)

    def test_classes_differ(self, tiny_shd):
        """Different words must produce different rasters."""
        x0 = tiny_shd.inputs[tiny_shd.targets == 0][0]
        x6 = tiny_shd.inputs[tiny_shd.targets == 6][0]
        assert not np.array_equal(x0, x6)


class TestGlyphToTarget:
    def test_paper_conversion_rule(self):
        """Pixel (x, y) -> spike in train y at time x (flipped rows)."""
        image = np.zeros((4, 6))
        image[0, 2] = 1.0      # top row, column 2
        target = glyph_to_target(image, steps=6, trains=4, threshold=0.5)
        assert target.shape == (6, 4)
        # Top image row maps to the highest train index.
        assert target[2, 3] == 1.0
        assert target.sum() == 1.0

    def test_image_must_fit(self):
        with pytest.raises(ValueError):
            glyph_to_target(np.ones((10, 10)), steps=5, trains=20)

    def test_centred_placement(self):
        image = np.ones((2, 2))
        target = glyph_to_target(np.pad(image, 0), steps=10, trains=10,
                                 threshold=0.5)
        times, trains = np.nonzero(target)
        assert times.min() >= 3 and times.max() <= 6
        assert trains.min() >= 3 and trains.max() <= 6


class TestAssociationGenerator:
    def test_shapes(self):
        config = AssociationConfig(n_samples=10, steps=40, target_trains=36,
                                   glyph_size=24, input_channels=64)
        dataset = generate_association(config, rng=0)
        assert dataset.inputs.shape == (10, 40, 64)
        assert dataset.targets.shape == (10, 40, 36)
        assert not dataset.is_classification

    def test_digit_labels_recorded(self):
        config = AssociationConfig(n_samples=8, steps=40, target_trains=36,
                                   glyph_size=24, input_channels=64)
        dataset = generate_association(config, rng=0)
        digits = dataset.metadata["digit_labels"]
        assert len(digits) == 8
        assert all(0 <= d <= 9 for d in digits)

    def test_targets_look_like_digits(self):
        """The target raster must contain the glyph's spike mass."""
        config = AssociationConfig(n_samples=4, steps=80, target_trains=72,
                                   glyph_size=64, input_channels=64)
        dataset = generate_association(config, rng=0)
        per_target = dataset.targets.sum(axis=(1, 2))
        assert np.all(per_target > 50)

    def test_glyph_must_fit_config(self):
        with pytest.raises(Exception):
            AssociationConfig(steps=30, target_trains=20, glyph_size=28)
