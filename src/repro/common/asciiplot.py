"""ASCII plotting for environments without matplotlib.

The paper's figures are regenerated as *data series* by the benchmark
harness; for quick human inspection the examples and benches also render
those series as monospace line plots and spike rasters.

Two primitives are provided:

* :func:`line_plot` — one or more y-series on a shared x axis;
* :func:`raster_plot` — a (channels x time) binary spike raster, down-sampled
  to a character grid.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "raster_plot", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a single series as a one-line density string.

    Values are min-max normalised and mapped onto a 10-level character ramp;
    the series is resampled to ``width`` columns.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        # Block-max resampling keeps spikes visible.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].max() if b > a else data[min(a, data.size - 1)]
                         for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo if hi > lo else 1.0
    indices = ((data - lo) / span * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def line_plot(series: Mapping[str, Sequence[float]], height: int = 12,
              width: int = 70, title: str = "") -> str:
    """Render one or more named series as an ASCII line plot.

    Parameters
    ----------
    series:
        Mapping from legend label to y-values.  All series share the x axis
        (sample index) and the y scale.
    height, width:
        Character-grid size of the plot area.
    title:
        Optional title line.

    Returns
    -------
    str
        Multi-line plot; each series uses a distinct glyph, listed in the
        legend below the plot.
    """
    if not series:
        return title
    glyphs = "*o+x#@%&"
    arrays = {name: np.asarray(vals, dtype=float) for name, vals in series.items()}
    n_max = max(a.size for a in arrays.values())
    if n_max == 0:
        return title
    lo = min(float(a.min()) for a in arrays.values() if a.size)
    hi = max(float(a.max()) for a in arrays.values() if a.size)
    span = hi - lo if hi > lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, data) in enumerate(arrays.items()):
        glyph = glyphs[k % len(glyphs)]
        if data.size == 0:
            continue
        xs = np.linspace(0, width - 1, data.size).astype(int)
        ys = ((data - lo) / span * (height - 1)).astype(int)
        for x, y in zip(xs, ys):
            grid[height - 1 - y][x] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:12.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{lo:12.4g} +" + "-" * width)
    legend = "   ".join(f"{glyphs[k % len(glyphs)]} {name}"
                        for k, name in enumerate(arrays))
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def raster_plot(spikes: np.ndarray, height: int = 20, width: int = 70,
                title: str = "") -> str:
    """Render a (channels, time) spike raster on a character grid.

    The raster is down-sampled by OR-ing spikes within each character cell,
    so sparse activity stays visible.  Channel 0 is drawn at the bottom,
    matching the paper's figures.
    """
    data = np.asarray(spikes)
    if data.ndim != 2:
        raise ValueError(f"raster_plot expects (channels, time), got {data.shape}")
    channels, steps = data.shape
    height = min(height, max(channels, 1))
    width = min(width, max(steps, 1))
    row_edges = np.linspace(0, channels, height + 1).astype(int)
    col_edges = np.linspace(0, steps, width + 1).astype(int)
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for r in range(height - 1, -1, -1):
        r0, r1 = row_edges[r], row_edges[r + 1]
        row_chars = []
        for c in range(width):
            c0, c1 = col_edges[c], col_edges[c + 1]
            block = data[r0:max(r1, r0 + 1), c0:max(c1, c0 + 1)]
            row_chars.append("#" if np.any(block) else " ")
        lines.append("|" + "".join(row_chars) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f" channels={channels} steps={steps} "
                 f"spikes={int(np.count_nonzero(data))}")
    return "\n".join(lines)
