"""Hardware-in-the-loop inference: a trained network on RRAM crossbars.

This implements the evaluation behind the paper's Fig. 8: trained weights
are programmed into differential RRAM crossbars with k-bit quantization
and per-device lognormal process variation; inference then runs the same
adaptive-threshold dynamics using the *achieved* (non-ideal) weights.

Because the neuron dynamics are unchanged — only the weight values move —
mapping reduces to constructing a clone network whose weights are the
crossbars' effective weights.  That clone is a faithful model of the
analog datapath under the paper's own simplifications (sense-resistor
loading neglected via the current-amplifier argument, Section IV).

The Fig. 8 sweep is embarrassingly parallel across programming draws: each
device-noise seed owns an independent rng stream keyed by ``(root seed,
seed name)``, so :func:`accuracy_under_variation` can fan its seeds out to
a :class:`~repro.runtime.pool.WorkerPool` (``workers=N``) and return
exactly the numbers the serial loop returns — the per-seed unit of work is
the shared :func:`seed_accuracy` either way.
"""

from __future__ import annotations

import numpy as np

from ..common.rng import RandomState, as_random_state
from ..core.network import SpikingNetwork
from ..core.trainer import run_in_batches
from .crossbar import DifferentialCrossbar
from .devices import RRAMDeviceConfig

__all__ = ["HardwareMappedNetwork", "accuracy_under_variation",
           "seed_accuracy"]


class HardwareMappedNetwork:
    """A trained :class:`~repro.core.network.SpikingNetwork` on crossbars.

    Parameters
    ----------
    network:
        The trained software model (unmodified).
    device:
        RRAM device model; ``levels = 2**bits`` sets the quantization and
        ``variation`` the programming noise.
    rng:
        Randomness for the device draws (one independent stream per layer
        and polarity).
    """

    def __init__(self, network: SpikingNetwork,
                 device: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None):
        self.software_network = network
        self.device = device or RRAMDeviceConfig()
        root = as_random_state(rng)
        self.crossbars = [
            DifferentialCrossbar(layer.weight, self.device,
                                 rng=root.child(f"crossbar{i}"))
            for i, layer in enumerate(network.layers)
        ]
        self.hardware_network = SpikingNetwork(
            network.sizes, params=network.params,
            neuron_kind=network.neuron_kind, rng=0,
        )
        self.hardware_network.set_weights(
            [xbar.effective_weights() for xbar in self.crossbars]
        )

    def run(self, inputs: np.ndarray, record: bool = False,
            engine: str = "fused", precision: str | None = None):
        """Inference with the achieved (quantized + noisy) weights.

        ``engine`` and ``precision`` are forwarded to
        :meth:`~repro.core.network.SpikingNetwork.run` (they previously
        had no way through and the defaults were silently used).
        """
        return self.hardware_network.run(inputs, record=record,
                                         engine=engine, precision=precision)

    def weight_errors(self) -> list[float]:
        """Per-layer RMS relative weight error vs the software model."""
        errors = []
        for layer, xbar in zip(self.software_network.layers, self.crossbars):
            ideal = layer.weight
            actual = xbar.effective_weights()
            scale = float(np.max(np.abs(ideal))) or 1.0
            errors.append(float(np.sqrt(np.mean((actual - ideal) ** 2)) / scale))
        return errors


def seed_correct(network: SpikingNetwork, inputs: np.ndarray,
                 labels: np.ndarray, bits: int, variation: float,
                 seed: int, batch_size: int = 64, engine: str = "fused",
                 precision: str | None = None) -> int:
    """Correctly-classified count of one programming draw on ``inputs``.

    ``seed`` fully determines the draw (quantization targets + device
    variation), so evaluating a subset of samples — e.g. one bounded
    shared-memory window of a pooled sweep — reproduces exactly the
    predictions the full-set evaluation would give those samples: counts
    over disjoint windows sum to the full-set count.
    """
    device = RRAMDeviceConfig(levels=2 ** int(bits), variation=variation)
    mapped = HardwareMappedNetwork(network, device, rng=RandomState(seed))
    outputs = run_in_batches(mapped.hardware_network, inputs, batch_size,
                             engine=engine, precision=precision)
    predictions = np.argmax(outputs.sum(axis=1), axis=1)
    return int(np.sum(predictions == np.asarray(labels)))


def seed_accuracy(network: SpikingNetwork, inputs: np.ndarray,
                  labels: np.ndarray, bits: int, variation: float,
                  seed: int, batch_size: int = 64, engine: str = "fused",
                  precision: str | None = None) -> float:
    """Accuracy of one independent programming draw (one Fig. 8 seed).

    This is the unit of work of :func:`accuracy_under_variation` — executed
    in-process by the serial loop, and window-wise (via
    :func:`seed_correct`) inside each pool worker, producing identical
    numbers either way (an integer count divided by ``n``).  ``seed`` is
    the integer seed of the draw's private rng stream.
    """
    count = seed_correct(network, inputs, labels, bits=bits,
                         variation=variation, seed=seed,
                         batch_size=batch_size, engine=engine,
                         precision=precision)
    return count / inputs.shape[0]


def accuracy_under_variation(network: SpikingNetwork, inputs: np.ndarray,
                             labels: np.ndarray, bits: int,
                             variation: float, n_seeds: int = 3,
                             rng: RandomState | int | None = None,
                             batch_size: int = 64, engine: str = "fused",
                             precision: str | None = None,
                             workers: int = 0,
                             pool=None) -> tuple[float, float]:
    """Mean/std accuracy over device-noise seeds (one Fig. 8 data point).

    Parameters
    ----------
    network:
        Trained classifier.
    inputs, labels:
        Evaluation set.
    bits:
        Weight precision (Fig. 8: 4 or 5).
    variation:
        Lognormal resistance-deviation sigma (Fig. 8 x-axis, 0 - 0.5).
    n_seeds:
        Independent programming draws to average over.
    engine, precision:
        Forwarded to the forward runs (previously ignored).
    workers, pool:
        ``workers >= 1`` evaluates the seeds concurrently on a
        :class:`~repro.runtime.pool.WorkerPool` (``pool`` reuses an
        existing one built for ``network`` — e.g. across a whole Fig. 8
        grid).  Every seed's rng stream is keyed by ``(rng, seed index)``
        only, so the parallel results equal the serial ones exactly.

    Returns
    -------
    (mean_accuracy, std_accuracy)
    """
    root = as_random_state(rng)
    seeds = [root.child(f"seed{s}").seed for s in range(n_seeds)]
    tasks = [(bits, variation, seed) for seed in seeds]
    if pool is not None:
        if pool.network is not network:
            raise ValueError(
                "pool was built for a different network object; build it "
                "from this network so the workers map the same weights")
        accuracies = pool.hw_eval(inputs, labels, tasks,
                                  batch_size=batch_size, engine=engine,
                                  precision=precision)
    elif workers >= 1 and n_seeds > 1:
        from ..runtime.pool import WorkerPool

        with WorkerPool(network, workers=min(workers, n_seeds)) as transient:
            accuracies = transient.hw_eval(inputs, labels, tasks,
                                           batch_size=batch_size,
                                           engine=engine,
                                           precision=precision)
    else:
        accuracies = [
            seed_accuracy(network, inputs, labels, bits=bits,
                          variation=variation, seed=seed,
                          batch_size=batch_size, engine=engine,
                          precision=precision)
            for seed in seeds
        ]
    accuracies = np.asarray(accuracies, dtype=np.float64)
    return float(np.mean(accuracies)), float(np.std(accuracies))
