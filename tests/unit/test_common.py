"""Unit tests for repro.common: rng, config, units, tables, errors."""

import dataclasses

import numpy as np
import pytest

from repro.common import (
    BaseConfig,
    ConfigError,
    ShapeError,
    RandomState,
    Table,
    as_random_state,
    check_shape,
    format_table,
    si_format,
)


class TestRandomState:
    def test_deterministic(self):
        a = RandomState(5).normal(size=10)
        b = RandomState(5).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_children_independent_of_parent_stream(self):
        root = RandomState(1)
        child_before = root.child("x").normal()
        root.normal(size=100)                 # advance the parent
        child_after = RandomState(1).child("x").normal()
        assert child_before == child_after

    def test_children_by_name_differ(self):
        root = RandomState(1)
        assert root.child("a").normal() != root.child("b").normal()

    def test_child_reproducible_across_processes(self):
        """Hash must not depend on PYTHONHASHSEED — fixed expectation."""
        v1 = RandomState(42).child("weights").integers(0, 1000)
        v2 = RandomState(42).child("weights").integers(0, 1000)
        assert int(v1) == int(v2)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomState(-1)

    def test_as_random_state(self):
        assert as_random_state(None).seed == 0
        assert as_random_state(7).seed == 7
        rs = RandomState(3)
        assert as_random_state(rs) is rs
        with pytest.raises(TypeError):
            as_random_state("seed")

    def test_delegated_methods(self):
        rs = RandomState(0)
        assert rs.integers(0, 10) in range(10)
        assert 0.0 <= rs.random() < 1.0
        assert rs.choice([1, 2, 3]) in (1, 2, 3)
        assert rs.lognormal() > 0
        perm = rs.permutation(5)
        assert sorted(perm.tolist()) == [0, 1, 2, 3, 4]


@dataclasses.dataclass(frozen=True)
class DemoConfig(BaseConfig):
    size: int = 4
    rate: float = 0.5
    name: str = "demo"
    shape: tuple = (2, 3)

    def validate(self):
        self.require_positive("size")
        self.require_in_range("rate", 0.0, 1.0)


class TestBaseConfig:
    def test_validation_runs_on_init(self):
        with pytest.raises(ConfigError):
            DemoConfig(size=-1)
        with pytest.raises(ConfigError):
            DemoConfig(rate=2.0)

    def test_replace_revalidates(self):
        config = DemoConfig()
        assert config.replace(size=8).size == 8
        with pytest.raises(ConfigError):
            config.replace(size=0)

    def test_dict_roundtrip(self):
        config = DemoConfig(size=7, rate=0.25)
        assert DemoConfig.from_dict(config.to_dict()) == config

    def test_tuple_restored_from_list(self):
        config = DemoConfig()
        data = config.to_dict()
        assert data["shape"] == [2, 3]
        restored = DemoConfig.from_dict(data)
        assert restored.shape == (2, 3)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            DemoConfig.from_dict({"bogus": 1})

    def test_json_roundtrip(self):
        config = DemoConfig(size=2)
        assert DemoConfig.from_json(config.to_json()) == config


class TestCheckShape:
    def test_accepts_wildcards(self):
        check_shape(np.zeros((5, 7)), (None, 7), "x")

    def test_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            check_shape(np.zeros((5,)), (None, 7), "x")

    def test_rejects_wrong_size(self):
        with pytest.raises(ShapeError, match="axis 1"):
            check_shape(np.zeros((5, 6)), (None, 7), "x")


class TestSiFormat:
    @pytest.mark.parametrize("value,unit,expected", [
        (3.329e-9, "J", "3.329 nJ"),
        (1.11e-3, "W", "1.11 mW"),
        (4.56e3, "Ohm", "4.56 kOhm"),
        (10.14e-12, "F", "10.14 pF"),
        (0.0, "V", "0 V"),
        (2.0, "s", "2 s"),
    ])
    def test_formatting(self, value, unit, expected):
        assert si_format(value, unit) == expected


class TestTables:
    def test_render_aligns_columns(self):
        table = Table(["Model", "Acc"], title="T")
        table.add_row(["adaptive", 98.4])
        table.add_row(["hr", 26.36])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Model" in lines[1]
        assert all("|" in line for line in lines[3:])

    def test_row_width_validation(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_separator(self):
        table = Table(["abc"])
        table.add_row([1])
        table.add_separator()
        table.add_row([2])
        # Header rule plus the explicit separator rule.
        assert table.render().count("---") >= 2

    def test_format_table_helper(self):
        text = format_table(["x"], [[1], [2]])
        assert "1" in text and "2" in text

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])
