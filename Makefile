# One-word entry points for the tier-1 verify, the benchmarks and the
# docs checks. Everything runs from the repo root with src/ on the path;
# no installation required. See README.md "Make targets".

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-baseline bench bench-json bench-serving bench-aware bench-table bench-smoke bench-paper chaos-smoke obs-smoke fleet-smoke docs quickstart serve-demo

## tier-1 verify: the full unit/property/integration suite
test:
	$(PYTHON) -m pytest -x -q

## project linter (docs/static_analysis.md): planted-violation
## self-check, then the tree against tools/lint_baseline.json
lint:
	$(PYTHON) tools/lint_smoke.py

## regenerate the lint baseline deterministically (stable sort,
## repo-relative paths); review the diff before committing it
lint-baseline:
	$(PYTHON) -m repro.analysis --write-baseline

## core-kernel throughput microbenchmarks (fused vs reference engines)
bench:
	$(PYTHON) -m pytest benchmarks/bench_throughput.py -q --benchmark-only \
		--benchmark-min-rounds=15 --benchmark-warmup=on

## machine-readable throughput numbers (serial vs parallel runtime)
bench-json:
	$(PYTHON) tools/bench_to_json.py --out BENCH_throughput.json

## open-loop serving benchmark (throughput_rps, p50/p95/p99 latency)
bench-serving:
	$(PYTHON) tools/bench_to_json.py --serving --out BENCH_serving.json

## hardware-aware train-step cost (ideal vs quantize vs quantize+noise)
bench-aware:
	$(PYTHON) tools/bench_to_json.py --aware --out BENCH_aware.json

## full scenario grid -> run_table.csv + every BENCH_*.json view of it
bench-table:
	$(PYTHON) -m repro.experiments harness full --table run_table.csv --bench-json

## seconds-scale scenario grid (the CI harness-smoke job)
bench-smoke:
	$(PYTHON) -m repro.experiments harness smoke --table run_table.csv

## regenerate every paper table/figure (REPRO_PROFILE=full for paper scale)
bench-paper:
	$(PYTHON) -m pytest benchmarks -q

## fault-injection gates: pool bitwise self-healing + chaos availability
chaos-smoke:
	$(PYTHON) tools/chaos_smoke.py --table run_table.csv

## telemetry gates: trace schema, exporter parsing, overhead <= 5%
obs-smoke:
	$(PYTHON) tools/obs_smoke.py --trace-dir traces

## fleet gates: 1-replica equivalence, tenant isolation, canary rollout
fleet-smoke:
	$(PYTHON) tools/fleet_smoke.py --table run_table.csv --trace-dir traces/fleet

## verify the documentation: README/docs exist and their local links resolve
docs:
	$(PYTHON) tools/check_docs.py

## end-to-end smoke: train the temporal-order quickstart task
quickstart:
	$(PYTHON) examples/quickstart.py

## boot the model server from a registry checkpoint, stream one SHD sample
serve-demo:
	$(PYTHON) examples/serve_demo.py
