"""Experiment registry and CLI: one runner per table/figure of the paper,
plus the declarative scenario harness that fills the single run-table
artifact (``docs/experiments.md``)."""

from .harness import PRESETS, preset_scenarios, run_scenario, run_scenarios
from .paperconfig import PAPER_CONFIG, PaperConfig, table1
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, run_experiment
from .runners import ExperimentResult, resolve_profile
from .scenario import HardwareSpec, LoadSpec, RunSpec, Scenario, expand

__all__ = [
    "PAPER_CONFIG",
    "PaperConfig",
    "table1",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "ExperimentResult",
    "resolve_profile",
    "PRESETS",
    "preset_scenarios",
    "run_scenario",
    "run_scenarios",
    "HardwareSpec",
    "LoadSpec",
    "RunSpec",
    "Scenario",
    "expand",
]
