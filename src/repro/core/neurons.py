"""Spiking neuron models: the paper's adaptive-threshold LIF and the
hard-reset baseline it is compared against.

Two models from Section II of the paper:

* :class:`AdaptiveLIFNeuron` — the proposed model, eqs. (6)-(11).  The
  membrane value is ``v[t] = g[t] - theta*h[t]`` where ``g`` is the weighted
  PSP and ``h`` is a low-pass filter of the neuron's *own past output
  spikes*.  Equivalently (eq. 12) the neuron compares ``g[t]`` against an
  *adaptive threshold* ``Vth + theta*h[t]``.  Nothing is ever cleared: the
  filter state carries the full history.

* :class:`HardResetLIFNeuron` — the conventional ODE model, eq. (1),
  discretised.  The membrane integrates the weighted input directly and is
  zeroed whenever it crosses threshold, destroying temporal history — the
  behaviour the paper's ablation ("This work (HR)" in Table II) shows to be
  harmful on timing-rich data.

Both neurons expose the same ``reset_state`` / ``step`` interface operating
on ``(batch, n)`` arrays so that a trained network can be re-evaluated with
either dynamic (the paper's Table II HR swap).

These classes *are* the step-wise reference implementation: ``step`` is
called once per time step by ``SpikingLinear.step`` and holds the
incremental state (``h``/``last_output`` for adaptive, ``v`` for hard
reset).  The fused engine (:mod:`repro.core.engine`, the default for
``SpikingNetwork.run``) evaluates the *same* recurrences as whole-sequence
scans over ``(batch, T, n)`` buffers — it bypasses ``step`` entirely for
speed but deposits the final-step state back into these objects, so code
that inspects ``neuron.h`` / ``neuron.v`` or calls
:meth:`AdaptiveLIFNeuron.adaptive_threshold` after a run sees identical
values under either engine.  Equivalence (same spikes and membrane traces)
is enforced by ``tests/unit/test_engine.py`` and
``tests/property/test_neuron_equivalence.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.errors import StateError
from .filters import decay_from_tau

__all__ = [
    "NeuronParameters",
    "AdaptiveLIFNeuron",
    "HardResetLIFNeuron",
    "make_neuron",
]


@dataclasses.dataclass(frozen=True)
class NeuronParameters(BaseConfig):
    """Shared neuron hyper-parameters (paper Table I defaults).

    Attributes
    ----------
    tau:
        Membrane / synapse time constant in steps (paper: 4).
    tau_r:
        Reset-filter time constant in steps (paper: 4).
    v_th:
        Base firing threshold ``Vth``.
    theta:
        Reset-charge strength ``theta`` scaling the adaptive threshold
        increment per output spike.
    """

    tau: float = 4.0
    tau_r: float = 4.0
    v_th: float = 1.0
    theta: float = 1.0

    def validate(self) -> None:
        self.require_positive("tau")
        self.require_positive("tau_r")
        self.require_positive("v_th")
        self.require_non_negative("theta")


class AdaptiveLIFNeuron:
    """The paper's soft-reset neuron (eqs. 6-11).

    Per step (given the weighted PSP ``g[t]`` from the synapse filter and
    crossbar):

    .. math::

        h[t] = e^{-1/\\tau_r} h[t-1] + O[t-1]   \\qquad (8)

        v[t] = g[t] - \\theta h[t]              \\qquad (6)

        O[t] = U(v[t] - V_{th})                 \\qquad (10, 11)

    The equivalent adaptive-threshold reading (eq. 12) is
    ``O[t] = 1  iff  g[t] > theta*h[t] + Vth``; :meth:`adaptive_threshold`
    exposes ``Vth + theta*h`` for inspection and the circuit comparison.
    """

    kind = "adaptive"

    def __init__(self, n: int, params: NeuronParameters | None = None):
        if n <= 0:
            raise ValueError(f"neuron count must be positive, got {n}")
        self.n = int(n)
        self.params = params or NeuronParameters()
        self.beta_r = decay_from_tau(self.params.tau_r)
        self.h: np.ndarray | None = None
        self.last_output: np.ndarray | None = None

    def reset_state(self, batch_size: int, dtype=np.float64) -> None:
        """Zero the reset filter and the remembered previous output."""
        self.h = np.zeros((batch_size, self.n), dtype=dtype)
        self.last_output = np.zeros((batch_size, self.n), dtype=dtype)

    def step(self, g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Advance one step given the weighted PSP ``g`` (batch, n).

        Returns
        -------
        (spikes, v):
            ``spikes`` is a float 0/1 array; ``v`` is the membrane value
            ``g - theta*h`` used for the threshold test (and whose centred
            value feeds the surrogate gradient during training).
        """
        if self.h is None or self.last_output is None:
            raise StateError("AdaptiveLIFNeuron.step called before reset_state")
        self.h = self.beta_r * self.h + self.last_output
        v = g - self.params.theta * self.h
        spikes = (v >= self.params.v_th).astype(v.dtype)
        self.last_output = spikes
        return spikes, v

    def stream_state(self) -> dict:
        """The live carry arrays under their stream-state keys.

        Used by the step-engine streaming path
        (:meth:`~repro.core.network.SpikingNetwork.run_stream`) to capture
        neuron state into an external
        :class:`~repro.core.engine.StreamState` after a chunk; the
        returned dict holds the *live* arrays, not copies.
        """
        if self.h is None or self.last_output is None:
            raise StateError("neuron state not initialised")
        return {"h": self.h, "o": self.last_output}

    def load_stream_state(self, arrays: dict) -> None:
        """Install carry arrays saved by :meth:`stream_state`.

        The arrays are adopted by reference — safe because :meth:`step`
        rebinds (never mutates) them.  Extra keys (e.g. the layer-level
        ``"k"``) are ignored.
        """
        self.h = arrays["h"]
        self.last_output = arrays["o"]

    def adaptive_threshold(self) -> np.ndarray:
        """Current effective threshold ``Vth + theta*h[t]`` (eq. 12 view)."""
        if self.h is None:
            raise StateError("neuron state not initialised")
        return self.params.v_th + self.params.theta * self.h

    def adaptive_threshold_preview(self) -> np.ndarray:
        """The threshold the *next* :meth:`step` call will compare against.

        ``step`` first advances ``h[t] = beta*h[t-1] + O[t-1]`` and then
        tests ``g[t] >= Vth + theta*h[t]``; this previews that value so the
        eq. 12 equivalence can be checked from outside.
        """
        if self.h is None or self.last_output is None:
            raise StateError("neuron state not initialised")
        h_next = self.beta_r * self.h + self.last_output
        return self.params.v_th + self.params.theta * h_next

    def __repr__(self) -> str:
        return f"AdaptiveLIFNeuron(n={self.n}, params={self.params})"


class HardResetLIFNeuron:
    """Discretised hard-reset LIF (paper eq. 1, the ablation baseline).

    Per step (given the raw weighted input ``j[t] = W x[t]``), with the
    default ``"impulse"`` discretization:

    .. math::

        v[t] = e^{-1/\\tau} v[t-1] + j[t]

        O[t] = U(v[t] - V_{th}); \\quad v[t] \\leftarrow 0 \\text{ if } O[t]=1

    Without the reset this accumulates exactly the same value as the
    adaptive model's PSP ``g[t]`` (both are the exponential filter of
    ``W x``); the *only* difference is that firing wipes the state.  That
    equality is property-tested in ``tests/property/test_neuron_equivalence.py``
    and is what makes the paper's weight-preserving neuron swap meaningful.

    ``discretization`` selects how the continuous ODE (1a) is stepped:

    * ``"impulse"`` — input spikes are Dirac impulses depositing charge
      ``w`` directly (exact ZOH solution for impulsive input).  This is
      the charge-conserving model of conventional accumulate-and-clear
      neuromorphic hardware, and the default.
    * ``"euler"`` — forward-Euler with the input treated as a constant
      current over the step: ``v[t] = (1-1/tau) v[t-1] + (1/tau) j[t]``.
      Its DC gain is 1 instead of ``1/(1-e^{-1/tau})``, so a network
      trained with SRM synapse filters is severely under-driven — a
      plausible reading of the paper's dramatic SHD collapse (Table II),
      reported as a separate ablation.
    """

    kind = "hard_reset"

    def __init__(self, n: int, params: NeuronParameters | None = None,
                 discretization: str = "impulse"):
        if n <= 0:
            raise ValueError(f"neuron count must be positive, got {n}")
        if discretization not in ("impulse", "euler"):
            raise ValueError(
                f"discretization must be 'impulse' or 'euler', "
                f"got {discretization!r}"
            )
        self.n = int(n)
        self.params = params or NeuronParameters()
        self.discretization = discretization
        if discretization == "impulse":
            self.alpha = decay_from_tau(self.params.tau)
            self.input_gain = 1.0
        else:
            self.alpha = 1.0 - 1.0 / self.params.tau
            self.input_gain = 1.0 / self.params.tau
        self.v: np.ndarray | None = None

    def reset_state(self, batch_size: int, dtype=np.float64) -> None:
        """Zero the membrane potential."""
        self.v = np.zeros((batch_size, self.n), dtype=dtype)

    def step(self, j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Advance one step given raw weighted input ``j`` (batch, n).

        Returns ``(spikes, v_pre)`` where ``v_pre`` is the membrane value
        *before* the reset (the value compared against threshold, and the
        value the surrogate gradient is evaluated at).
        """
        if self.v is None:
            raise StateError("HardResetLIFNeuron.step called before reset_state")
        v_pre = self.alpha * self.v + self.input_gain * j
        spikes = (v_pre >= self.params.v_th).astype(v_pre.dtype)
        # Hard reset to v_rest = 0 (paper eq. 1b): history is destroyed.
        self.v = v_pre * (1.0 - spikes)
        return spikes, v_pre

    def stream_state(self) -> dict:
        """The live membrane carry under its stream-state key (see
        :meth:`AdaptiveLIFNeuron.stream_state`)."""
        if self.v is None:
            raise StateError("neuron state not initialised")
        return {"v": self.v}

    def load_stream_state(self, arrays: dict) -> None:
        """Install a membrane carry saved by :meth:`stream_state` (adopted
        by reference; :meth:`step` rebinds, never mutates)."""
        self.v = arrays["v"]

    def __repr__(self) -> str:
        return (f"HardResetLIFNeuron(n={self.n}, params={self.params}, "
                f"discretization={self.discretization!r})")


def make_neuron(kind: str, n: int, params: NeuronParameters | None = None):
    """Factory: ``kind`` is ``"adaptive"``, ``"hard_reset"`` or
    ``"hard_reset_euler"``."""
    if kind == "adaptive":
        return AdaptiveLIFNeuron(n, params)
    if kind == "hard_reset":
        return HardResetLIFNeuron(n, params, discretization="impulse")
    if kind == "hard_reset_euler":
        return HardResetLIFNeuron(n, params, discretization="euler")
    raise ValueError(
        f"unknown neuron kind {kind!r}; use 'adaptive', 'hard_reset' or "
        f"'hard_reset_euler'"
    )
