"""Legacy setuptools entry point.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable;
this stub lets ``pip install -e .`` fall back to ``setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
