"""Synthetic SHD: spoken digits through an artificial inner ear.

The real Spiking Heidelberg Digits dataset (Cramer et al., cited as [3] in
the paper) contains English and German spoken digits converted to 700
spike trains by an inner-ear model, giving 20 classes whose information is
carried largely by *spike timing*.  This generator reproduces the pipeline
offline:

    formant speech synthesis  ->  inner-ear encoder  ->  (T, 700) raster
    (:mod:`repro.data.speech`)    (:mod:`repro.data.cochlea`)

Class identity lives in the formant trajectories (channel-time patterns),
so — as with real SHD — a hard-reset neuron that wipes its temporal state
degrades severely here (Table II's 85.69 % -> 26.36 % collapse), while a
mostly-spatial dataset like N-MNIST is barely affected.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.rng import RandomState, as_random_state
from .cochlea import Cochlea, CochleaConfig
from .datasets import SpikeDataset
from .speech import LANGUAGES, synthesize_digit

__all__ = ["SyntheticSHDConfig", "generate_shd", "SHD_CLASS_NAMES"]

SHD_CLASS_NAMES = [f"{lang[:2]}:{digit}"
                   for lang in LANGUAGES for digit in range(10)]


@dataclasses.dataclass(frozen=True)
class SyntheticSHDConfig(BaseConfig):
    """Generation parameters for the synthetic SHD dataset.

    Attributes
    ----------
    n_per_class:
        Samples per (language, digit) class — 20 classes total.
    steps:
        Raster length in frames (silence-padded; natural duration varies
        with the speaker's tempo).
    n_channels:
        Inner-ear channels (SHD: 700).
    sample_rate:
        Synthesis rate (Hz).
    gain_jitter:
        Hair-cell gain variability (see :meth:`Cochlea.encode`).
    """

    n_per_class: int = 25
    steps: int = 100
    n_channels: int = 700
    sample_rate: int = 8000
    gain_jitter: float = 0.05

    def validate(self) -> None:
        self.require_positive("n_per_class")
        self.require_positive("steps")
        self.require_positive("n_channels")
        self.require_positive("sample_rate")
        self.require_non_negative("gain_jitter")


def generate_shd(config: SyntheticSHDConfig | None = None,
                 rng: RandomState | int | None = None) -> SpikeDataset:
    """Generate the synthetic SHD dataset.

    Returns
    -------
    SpikeDataset
        ``inputs`` of shape (20*n_per_class, steps, n_channels); integer
        ``targets`` where class = language_index*10 + digit
        (see :data:`SHD_CLASS_NAMES`).
    """
    config = config or SyntheticSHDConfig()
    root = as_random_state(rng)
    cochlea = Cochlea(CochleaConfig(
        n_channels=config.n_channels,
        sample_rate=config.sample_rate,
    ))
    n_total = 20 * config.n_per_class
    inputs = np.zeros((n_total, config.steps, config.n_channels),
                      dtype=np.float32)
    labels = np.zeros(n_total, dtype=np.int64)

    index = 0
    for lang_index, language in enumerate(LANGUAGES):
        for digit in range(10):
            class_id = lang_index * 10 + digit
            for sample in range(config.n_per_class):
                sample_rng = root.child(f"{language}-{digit}-{sample}")
                waveform = synthesize_digit(
                    language, digit, rng=sample_rng.child("speech"),
                    sample_rate=config.sample_rate,
                )
                inputs[index] = cochlea.encode(
                    waveform, steps=config.steps,
                    rng=sample_rng.child("cochlea"),
                    gain_jitter=config.gain_jitter,
                )
                labels[index] = class_id
                index += 1

    return SpikeDataset(
        inputs, labels, name="synthetic-shd",
        class_names=SHD_CLASS_NAMES,
        metadata={"config": config.to_dict(), "seed": root.seed},
    )
