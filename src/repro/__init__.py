"""repro — reproduction of "Neuromorphic Algorithm-hardware Codesign for
Temporal Pattern Learning" (Fang et al., DAC 2021).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: filter-based
  adaptive-threshold LIF neurons, surrogate-gradient BPTT, the two task
  losses, optimizers and trainer.
* :mod:`repro.data` — synthetic stand-ins for N-MNIST and SHD (procedural
  digit glyphs + DVS camera simulator; formant speech + artificial cochlea)
  and the pattern-association task.
* :mod:`repro.hardware` — the codesigned hardware model: RRAM devices,
  quantization, crossbars, a behavioral analog circuit simulator (MNA),
  the paper's Fig. 6 neuron circuit, and power/energy/area estimation.
* :mod:`repro.runtime` — the parallel runtime: a shared-memory worker
  pool for data-parallel training / sharded inference / parallel sweeps,
  and the workspace buffer arenas the fused engine recycles through.
* :mod:`repro.serve` — the serving layer: streaming stateful inference
  (``SpikingNetwork.run_stream`` + ``StreamState``), per-client sessions,
  a micro-batching scheduler, and a versioned model registry.
* :mod:`repro.autograd` — a minimal reverse-mode AD engine used to
  cross-check the hand-derived BPTT.
* :mod:`repro.analysis` — spike-train metrics and distances.
* :mod:`repro.experiments` — the per-table/per-figure experiment registry
  and CLI (``python -m repro.experiments ...``).

Quickstart::

    from repro import SpikingNetwork, Trainer, TrainerConfig, CrossEntropyRateLoss
    net = SpikingNetwork((100, 64, 10), rng=0)
    trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(epochs=5))
    trainer.fit(train_x, train_y, test_x, test_y)
"""

from .common import RandomState
from .core import (
    AdaptiveLIFNeuron,
    CrossEntropyRateLoss,
    ErfcSurrogate,
    HardResetLIFNeuron,
    NeuronParameters,
    SpikingLinear,
    SpikingNetwork,
    StreamState,
    Trainer,
    TrainerConfig,
    VanRossumLoss,
    backward,
)
from .runtime import WorkerPool, Workspace
from .serve import MicroBatcher, ModelRegistry, ModelServer

__version__ = "1.2.0"

__all__ = [
    "RandomState",
    "AdaptiveLIFNeuron",
    "CrossEntropyRateLoss",
    "ErfcSurrogate",
    "HardResetLIFNeuron",
    "NeuronParameters",
    "SpikingLinear",
    "SpikingNetwork",
    "Trainer",
    "TrainerConfig",
    "VanRossumLoss",
    "backward",
    "StreamState",
    "WorkerPool",
    "Workspace",
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "__version__",
]
