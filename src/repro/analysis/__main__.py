"""``python -m repro.analysis`` — run the project linter.

Thin shim over :mod:`repro.analysis.lint.cli`; the lint package itself
is stdlib-only (importing the :mod:`repro` namespace does pull numpy —
use ``tools/lint_smoke.py`` for a truly dependency-free invocation).
"""

import sys

from .lint.cli import main

sys.exit(main())
