"""Deterministic fault injection: named sites, seeded triggers, one plan.

Production robustness cannot be tested by waiting for production to
fail.  This module gives the repo a *fault plane*: code that has a
failure mode declares a **site** (a dotted name like
``pool.worker.crash``), and a test, a chaos scenario or a CLI run
installs a :class:`FaultPlan` saying *when* each site fires.  Sites are
free when no plan is installed — one dict lookup — so the production
path pays nothing.

Triggers are deterministic by construction:

* ``nth=(2, 5)`` fires on the 2nd and 5th *visit* of the site in this
  process (visits are counted per site, so a plan replays exactly);
* ``probability=0.3`` draws per visit from a per-``(site, rule)``
  stream derived from ``FaultPlan(seed)`` via
  :class:`~repro.common.rng.RandomState` children — the draw sequence
  depends only on the visit order at that site, never on other sites;
* ``where={"worker": 0, "generation": 0}`` filters on the installer's
  *context* (worker index, respawn generation, ...), so a plan can
  crash only the original incarnation of worker 0 and let its respawn
  run clean;
* ``times=1`` caps firings per process.

The plan travels: :class:`~repro.runtime.pool.WorkerPool` snapshots the
active plan into its ``_PoolSpec``, and every worker (re)installs a
**fresh** copy (:meth:`FaultPlan.fresh` — counters reset) with
``worker=index, generation=n`` context, so child-process injection is
reproducible regardless of start method or respawns.  Pickling a plan
drops its counters for the same reason.

Known sites (:data:`KNOWN_SITES`) are catalogued in
``docs/robustness.md``; the chaos scenario kind
(:mod:`repro.experiments.scenario`) validates its schedule against this
catalog so a typo fails before any compute.
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses

from .errors import ReproError
from .rng import RandomState

__all__ = [
    "KNOWN_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active",
    "active_plan",
    "deactivate",
    "hit",
    "install",
    "maybe_raise",
    "should_fire",
]

#: The fault-site catalog — every site the library consults, with the
#: failure it simulates (see docs/robustness.md for recovery semantics).
KNOWN_SITES = (
    "pool.worker.crash",    # worker process exits hard before a command
    "pool.worker.hang",     # worker stops replying (sleeps past timeout)
    "pool.reply.corrupt",   # worker sends a protocol-violating reply
    "serve.tick.raise",     # the batched tick computation raises
    "serve.request.raise",  # one request's isolated re-run raises
    "serve.shadow.raise",   # the shadow (canary) stream raises
    "hw.weights.stale",     # the hardware weight read fails
    "fleet.replica.down",   # a fleet replica dies (queue fails, routes move)
    "fleet.route.misroute", # the fleet router picks the wrong replica
)


class FaultError(ReproError):
    """The exception an exception-injecting fault site raises."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """When one site fires.

    Parameters
    ----------
    site:
        Exact site name (see :data:`KNOWN_SITES`).
    nth:
        1-based visit indices that fire (int or tuple of ints).
    probability:
        Per-visit Bernoulli firing probability in ``[0, 1]``, drawn
        from the plan's per-``(site, rule)`` stream.
    times:
        Cap on firings per process (``None`` = unlimited).
    where:
        Context filters — a mapping the installer's context must
        contain, e.g. ``{"worker": 0, "generation": 0}``.  Stored as a
        sorted items tuple so rules stay hashable.
    payload:
        Site-specific knob (e.g. hang duration in seconds).
    """

    site: str
    nth: tuple = ()
    probability: float = 0.0
    times: int | None = None
    where: tuple = ()
    payload: float | None = None

    def __post_init__(self):
        if not self.site:
            raise ValueError("a fault rule needs a non-empty site")
        nth = self.nth
        if isinstance(nth, int):
            nth = (nth,)
        nth = tuple(sorted(int(n) for n in nth))
        if any(n < 1 for n in nth):
            raise ValueError(f"nth visits are 1-based, got {nth}")
        object.__setattr__(self, "nth", nth)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if not nth and self.probability == 0.0:
            raise ValueError(
                f"rule for {self.site!r} can never fire: give nth visits "
                "and/or a probability")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        where = self.where
        if isinstance(where, dict):
            where = tuple(sorted(where.items()))
        object.__setattr__(self, "where", tuple(where))

    def matches_context(self, context: dict) -> bool:
        return all(context.get(key) == value for key, value in self.where)


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus per-process state.

    The rules and seed are the *plan* (immutable, picklable); the visit
    counters, firing counts and probability streams are per-process
    *state* and reset on :meth:`fresh` and on unpickling.  ``injected``
    counts firings per site — the chaos harness reports its sum as the
    ``faults_injected`` run-table column.
    """

    def __init__(self, rules, seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(
            FaultRule(**rule) if isinstance(rule, dict) else rule
            for rule in rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(
                    f"rules must be FaultRule or dicts, "
                    f"got {type(rule).__name__}")
        self.seed = int(seed)
        self._reset()

    def _reset(self) -> None:
        self.visits: collections.Counter = collections.Counter()
        self.injected: collections.Counter = collections.Counter()
        self._fired: collections.Counter = collections.Counter()
        self._streams: dict = {}

    def fresh(self) -> "FaultPlan":
        """A state-free copy (same rules and seed, zero counters)."""
        return FaultPlan(self.rules, seed=self.seed)

    # Pickling ships only the plan, never the state: a spawned worker
    # must start counting visits from zero no matter how many the
    # master had already counted.
    def __getstate__(self) -> dict:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._reset()

    def _stream(self, site: str, rule_index: int):
        key = (site, rule_index)
        if key not in self._streams:
            self._streams[key] = RandomState(self.seed).child(
                f"{site}#{rule_index}")
        return self._streams[key]

    def hit(self, site: str, context: dict | None = None) -> FaultRule | None:
        """Count one visit of ``site``; return the rule that fires, if any.

        Every matching probabilistic rule draws exactly once per visit
        (even when an earlier rule already fired), so the draw sequence
        — and therefore the whole plan — is a pure function of per-site
        visit order.
        """
        context = context or {}
        self.visits[site] += 1
        visit = self.visits[site]
        fired = None
        for index, rule in enumerate(self.rules):
            if rule.site != site or not rule.matches_context(context):
                continue
            due = visit in rule.nth
            if rule.probability > 0.0:
                draw = float(self._stream(site, index).random())
                due = due or draw < rule.probability
            if not due:
                continue
            if rule.times is not None and self._fired[index] >= rule.times:
                continue
            if fired is None:
                fired = rule
                self._fired[index] += 1
                self.injected[site] += 1
        if fired is not None:
            # Lazy import: faults sits below obs in the layer order, and
            # the event is only worth an import once something fired.
            from ..obs import event as _obs_event

            _obs_event("fault.injected", site=site, visit=visit, **context)
        return fired

    def __repr__(self) -> str:
        return (f"FaultPlan({len(self.rules)} rules, seed={self.seed}, "
                f"injected={sum(self.injected.values())})")


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None
_CONTEXT: dict = {}


def install(plan: FaultPlan, **context) -> FaultPlan:
    """Make ``plan`` the process's active plan (replacing any other).

    ``context`` keys (e.g. ``worker=1, generation=0``) are what rule
    ``where`` filters match against.
    """
    global _ACTIVE, _CONTEXT
    _ACTIVE = plan
    _CONTEXT = dict(context)
    return plan


def deactivate() -> None:
    """Remove the active plan; every site becomes a no-op again."""
    global _ACTIVE, _CONTEXT
    _ACTIVE = None
    _CONTEXT = {}


def active_plan() -> FaultPlan | None:
    return _ACTIVE


@contextlib.contextmanager
def active(plan: FaultPlan, **context):
    """Scoped :func:`install`: restores the previous plan on exit."""
    previous, previous_context = _ACTIVE, _CONTEXT
    install(plan, **context)
    try:
        yield plan
    finally:
        if previous is None:
            deactivate()
        else:
            install(previous, **previous_context)


def hit(site: str, **extra) -> FaultRule | None:
    """Visit ``site`` under the active plan; the firing rule or ``None``.

    This is the function fault sites call: with no plan installed it
    returns immediately without counting anything.  ``extra`` keys are
    merged over the installed context for this one visit — how a site
    that hosts several instances (e.g. the fleet's per-replica
    ``fleet.replica.down``) exposes *which* instance is visiting to a
    rule's ``where`` filter.  Note visits are still counted per site,
    not per context: ``nth`` indices interleave across instances, so
    instance-targeted schedules should use ``probability`` + ``where``
    (+ ``times``) rather than ``nth``.
    """
    if _ACTIVE is None:
        return None
    context = {**_CONTEXT, **extra} if extra else _CONTEXT
    return _ACTIVE.hit(site, context)


def should_fire(site: str, **extra) -> bool:
    return hit(site, **extra) is not None


def maybe_raise(site: str) -> None:
    """Raise :class:`FaultError` if ``site`` fires under the active plan."""
    if hit(site) is not None:
        raise FaultError(f"injected fault at site {site!r}")
