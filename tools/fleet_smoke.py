#!/usr/bin/env python
"""Fleet gates: 1-replica equivalence, tenant isolation, canary rollout.

``make fleet-smoke`` (and the ``fleet-smoke`` CI job) runs four seeded,
deterministic gates over the multi-tenant serving fleet
(:mod:`repro.serve.fleet`, docs/fleet.md):

1. **Equivalence gate** — a 1-replica :class:`~repro.serve.Fleet` must
   return outputs bitwise-identical to a bare
   :class:`~repro.serve.ModelServer` streaming the same session, for
   every available engine: the router, admission control, and canary
   plumbing may not perturb a single computed spike.
2. **Isolation gate** — a hot tenant driven past its token-bucket quota
   must absorb every quota rejection itself; the cold tenant sharing
   the fleet finishes with *zero* rejections of any kind.
3. **Canary gate** — a canary generation deployed at weight 0.5 must
   receive its share of new sessions within tolerance at the fixed
   seed, collect enough rolling-window observations to be judged,
   promote on the clean divergence/error signal, and drain the losing
   generation to retirement (generation-fenced: no session migrates).
4. **Table gate** — the ``fleet`` scenario preset through the harness
   must emit the aggregate row *plus* one per-tenant SLO row per
   tenant into ``--table``, with the canary share measured and the
   cold tenant rejection-free; telemetry exports land in
   ``--trace-dir`` (CI uploads both).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.core import SpikingNetwork  # noqa: E402
from repro.core import engine as engine_mod  # noqa: E402

AVAILABILITY_FLOOR = 0.95

#: |measured canary session share - deployed weight| ceiling at the
#: pinned seed (40 sessions drawn from the fleet's seeded stream).
CANARY_TOLERANCE = 0.2

SIZES = (24, 20, 12)


def make_net(seed: int = 1) -> SpikingNetwork:
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_chunk(steps: int = 6, seed: int = 0,
               density: float = 0.15) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


def _engines() -> list[str]:
    engines = ["step"]
    if engine_mod._sparse is not None:
        engines.append("fused")
    return engines


def equivalence_gate() -> list[str]:
    """1-replica fleet outputs bitwise == bare server, per engine."""
    from repro.serve import Fleet, ModelServer

    errors = []
    chunks = [make_chunk(seed=i) for i in range(4)]
    for engine in _engines():
        server = ModelServer(make_net(), engine=engine, max_batch=4,
                             max_wait_ms=0.0)
        try:
            sid = server.open_session(now=0.0)
            solo = []
            for i, chunk in enumerate(chunks):
                ticket = server.submit(sid, chunk, now=float(i))
                server.flush(now=float(i))
                solo.append(ticket.outputs.copy())
        finally:
            server.close()

        fleet = Fleet(make_net(), replicas=1, engine=engine, max_batch=4,
                      max_wait_ms=0.0, seed=3)
        try:
            fid = fleet.open_session("t0", now=0.0)
            routed = []
            for i, chunk in enumerate(chunks):
                ticket = fleet.submit(fid, chunk, now=float(i))
                fleet.flush(now=float(i))
                routed.append(ticket.outputs.copy())
            fleet.check_invariants()
        finally:
            fleet.close()

        same = all(np.array_equal(a, b) for a, b in zip(solo, routed))
        if not same:
            errors.append(f"{engine}: 1-replica fleet outputs diverged "
                          "from the bare ModelServer")
        print(f"equivalence gate [{engine}]: {len(chunks)} chunks "
              f"bitwise={'ok' if same else 'FAIL'}")
    return errors


def isolation_gate() -> list[str]:
    """Hot tenant over quota; cold tenant must see zero rejections."""
    from repro.serve import Fleet, TenantQuota
    from repro.serve.loadgen import TenantLoad, open_loop_fleet

    fleet = Fleet(make_net(), replicas=2, engine="step", max_batch=8,
                  max_wait_ms=0.5, queue_limit=64, seed=5)
    try:
        report = open_loop_fleet(
            fleet,
            tenants=(
                TenantLoad("hot", share=3.0, sessions=6,
                           quota=TenantQuota(rate_rps=150.0, burst=8,
                                             max_pending=16)),
                TenantLoad("cold", share=1.0, sessions=4),
            ),
            requests=400, rate_rps=800.0, chunk_steps=6, rng=5)
    finally:
        fleet.close()

    errors = []
    hot_quota = report.quota_rejected.get("hot", 0)
    cold_quota = report.quota_rejected.get("cold", 0)
    cold = report.tenants["cold"]
    if hot_quota == 0:
        errors.append("hot tenant was never quota-limited — the gate "
                      "did not exercise admission control")
    if cold_quota != 0:
        errors.append(f"cold tenant took {cold_quota} quota rejections "
                      "under hot-tenant overload")
    if cold.rejected != 0:
        errors.append(f"cold tenant took {cold.rejected} rejections "
                      "under hot-tenant overload")
    print(f"isolation gate: hot quota_rejected={hot_quota} "
          f"cold rejected={cold.rejected} "
          f"{'ok' if not errors else 'FAIL'}")
    return errors


def canary_gate() -> list[str]:
    """Weighted split within tolerance; promote + drain end-to-end."""
    from repro.serve import Fleet

    errors = []
    fleet = Fleet(make_net(), replicas=2, engine="step", max_batch=8,
                  max_wait_ms=0.0, seed=11)
    try:
        old_primary = fleet.primary_generation
        fleet.deploy_canary(weight=0.5, replicas=1, label="canary")
        canary_gen = fleet.canary_generation
        generation_of = {r["replica"]: r["generation"]
                         for r in fleet.stats["per_replica"]}
        sessions = [fleet.open_session("t0", now=0.0) for _ in range(40)]
        on_canary = sum(
            1 for sid in sessions
            if generation_of[fleet.route(sid)] == canary_gen)
        share = on_canary / len(sessions)
        if abs(share - 0.5) > CANARY_TOLERANCE:
            errors.append(f"canary session share {share:.2f} is outside "
                          f"weight 0.5 +/- {CANARY_TOLERANCE}")

        now = 0.0
        for burst in range(2):   # fill the rolling canary window
            for j, sid in enumerate(sessions):
                fleet.submit(sid, make_chunk(seed=100 * burst + j),
                             now=now)
                now += 0.001
            fleet.flush(now=now)
        status = fleet.canary_status()
        if status["observed"] < 32:
            errors.append(f"canary window holds {status['observed']} "
                          "observations — too few to judge")
        verdict = fleet.evaluate_canary()
        if verdict != "promote":
            errors.append(f"clean canary evaluated to {verdict!r}, "
                          "expected 'promote'")
        fleet.promote_canary()
        if fleet.primary_generation != canary_gen \
                or fleet.canary_generation is not None:
            errors.append("promote_canary did not switch the primary "
                          "generation")
        for sid in sessions:
            fleet.close_session(sid)
        fleet.poll(now=now + 1.0)   # housekeeping retires drained gens
        if not fleet.drained(old_primary):
            errors.append(f"generation {old_primary} never drained "
                          "after promotion")
        fleet.check_invariants()
        print(f"canary gate: share={share:.2f} "
              f"observed={status['observed']} verdict={verdict} "
              f"drained={'ok' if not errors else 'FAIL'}")
    finally:
        fleet.close()
    return errors


def table_gate(table_path: str, trace_dir: str | None) -> list[str]:
    """The fleet preset: aggregate + per-tenant SLO rows, floors hold."""
    from repro.experiments.harness import fleet_scenarios, run_scenarios

    table = run_scenarios(fleet_scenarios(), log=print,
                          trace_dir=trace_dir)
    table.write_csv(table_path)
    print(f"wrote {table_path} ({len(table)} rows)")

    rows = table.by_kind("fleet")
    aggregates = [row for row in rows if row["tenant"] is None]
    tenants = {row["tenant"]: row for row in rows
               if row["tenant"] is not None}
    errors = []
    if not aggregates:
        errors.append("fleet preset produced no aggregate fleet row")
    if set(tenants) != {"hot", "cold"}:
        errors.append(f"expected per-tenant rows for hot+cold, got "
                      f"{sorted(tenants)}")
    for row in aggregates:
        if row["availability"] is None \
                or row["availability"] < AVAILABILITY_FLOOR:
            errors.append(f"{row['run_id']}: availability "
                          f"{row['availability']} < {AVAILABILITY_FLOOR}")
        if row["canary_weight"] and row["canary_share"] is None:
            errors.append(f"{row['run_id']}: canary deployed but no "
                          "measured canary_share")
    cold = tenants.get("cold")
    if cold is not None and (cold["quota_rejected"] or 0) != 0:
        errors.append(f"cold tenant row reports "
                      f"{cold['quota_rejected']} quota rejections")
    print(f"table gate: {len(aggregates)} aggregate + {len(tenants)} "
          f"tenant rows {'ok' if not errors else 'FAIL'}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--table", default="run_table.csv",
                        help="fleet run-table CSV output path")
    parser.add_argument("--trace-dir", default=None,
                        help="directory for the fleet preset's telemetry "
                             "exports (CI uploads it; omit to skip)")
    args = parser.parse_args(argv)
    errors = equivalence_gate()
    errors += isolation_gate()
    errors += canary_gate()
    errors += table_gate(args.table, args.trace_dir)
    if errors:
        print(f"\nfleet-smoke: {len(errors)} gate failure(s)")
        for error in errors:
            print(f"  FAIL {error}")
        return 1
    print("\nfleet-smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
