"""Loss functions for the paper's two learning tasks (Section III).

* :class:`CrossEntropyRateLoss` — classification: output spike *counts* are
  mapped to class probabilities by a softmax and scored with cross-entropy.

* :class:`VanRossumLoss` — temporal pattern association (eqs. 15-16): both
  the emitted and the target spike trains are convolved with the kernel
  ``f[t] = e^{-t/tau_m} - e^{-t/tau_s}`` and the loss is the mean squared
  distance between the two traces,

  .. math::

      D(S_i, S_j) = \\frac{1}{2T} \\sum_t (f*S_i - f*S_j)^2[t]

  summed over output trains and averaged over the batch.

Each loss exposes ``value_and_grad(outputs, targets)`` returning the scalar
loss and ``dE/dO`` (same shape as ``outputs``), which feeds directly into
:func:`repro.core.backprop.backward`, plus task-appropriate ``metrics``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from .filters import DoubleExponentialKernel

__all__ = ["CrossEntropyRateLoss", "VanRossumLoss", "softmax"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


class CrossEntropyRateLoss:
    """Softmax cross-entropy over output spike counts.

    Parameters
    ----------
    count_scale:
        Multiplier applied to the spike counts before the softmax.  Raw
        counts over a few hundred steps saturate the softmax; the paper
        maps "spike rate" to probability, so a scale of ``1/T`` (or any
        temperature) keeps gradients alive.  ``None`` (default) scales by
        ``10 / T`` at call time, which puts typical count differences in a
        useful logit range regardless of sequence length.
    """

    task = "classification"

    def __init__(self, count_scale: float | None = None):
        self.count_scale = count_scale

    def _scale(self, steps: int) -> float:
        if self.count_scale is not None:
            return self.count_scale
        return 10.0 / float(steps)

    def value_and_grad(self, outputs: np.ndarray,
                       labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and gradient.

        Parameters
        ----------
        outputs:
            Output spikes, shape (batch, T, classes).
        labels:
            Integer class labels, shape (batch,).
        """
        outputs = np.asarray(outputs, dtype=np.float64)
        labels = np.asarray(labels)
        if outputs.ndim != 3:
            raise ShapeError(f"outputs must be (batch, T, classes), got {outputs.shape}")
        batch, steps, classes = outputs.shape
        if labels.shape != (batch,):
            raise ShapeError(f"labels must be ({batch},), got {labels.shape}")
        if labels.min() < 0 or labels.max() >= classes:
            raise ShapeError(
                f"labels must be in [0, {classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        scale = self._scale(steps)
        logits = outputs.sum(axis=1) * scale          # (batch, classes)
        probs = softmax(logits, axis=1)
        eps = 1e-12
        loss = float(-np.mean(np.log(probs[np.arange(batch), labels] + eps)))
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(batch), labels] = 1.0
        grad_logits = (probs - one_hot) / batch       # (batch, classes)
        # Every time step contributes equally to the count.
        grad_outputs = np.repeat(grad_logits[:, None, :] * scale, steps, axis=1)
        return loss, grad_outputs

    def predict(self, outputs: np.ndarray) -> np.ndarray:
        """Predicted class per sample: argmax of output spike counts."""
        outputs = np.asarray(outputs)
        counts = outputs.sum(axis=1)
        return np.argmax(counts, axis=1)

    def metrics(self, outputs: np.ndarray, labels: np.ndarray) -> dict:
        """``{"accuracy": fraction correct}``."""
        predictions = self.predict(outputs)
        return {"accuracy": float(np.mean(predictions == np.asarray(labels)))}


class VanRossumLoss:
    """Kernelised spike-train distance loss (paper eqs. 15-16).

    Parameters
    ----------
    tau_m, tau_s:
        Kernel time constants (Table I: 4 and 1).
    """

    task = "association"

    def __init__(self, tau_m: float = 4.0, tau_s: float = 1.0):
        self.kernel = DoubleExponentialKernel(tau_m=tau_m, tau_s=tau_s)

    def value_and_grad(self, outputs: np.ndarray,
                       targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and gradient.

        Parameters
        ----------
        outputs, targets:
            Spike arrays of identical shape (batch, T, trains).
        """
        outputs = np.asarray(outputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs {outputs.shape} and targets {targets.shape} differ"
            )
        if outputs.ndim != 3:
            raise ShapeError(f"expected (batch, T, trains), got {outputs.shape}")
        batch, steps, _ = outputs.shape
        # Linearity: f*O - f*S = f*(O - S).
        diff_trace = self.kernel.convolve(outputs - targets, time_axis=1)
        loss = float(np.sum(diff_trace ** 2) / (2.0 * steps * batch))
        grad = self.kernel.adjoint_convolve(diff_trace, time_axis=1)
        grad /= steps * batch
        return loss, grad

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Plain van Rossum distance between two equal-shape spike arrays,
        per eq. 15 (summed over trains, averaged over a leading batch axis
        if present)."""
        a = np.atleast_3d(np.asarray(a, dtype=np.float64))
        b = np.atleast_3d(np.asarray(b, dtype=np.float64))
        if a.shape != b.shape:
            raise ShapeError(f"shapes differ: {a.shape} vs {b.shape}")
        steps = a.shape[1]
        diff = self.kernel.convolve(a - b, time_axis=1)
        return float(np.sum(diff ** 2) / (2.0 * steps * a.shape[0]))

    def metrics(self, outputs: np.ndarray, targets: np.ndarray) -> dict:
        """``{"van_rossum": mean distance per sample}``."""
        return {"van_rossum": self.distance(outputs, targets)}
