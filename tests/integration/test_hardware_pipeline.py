"""Integration: trained model -> RRAM crossbar mapping -> accuracy under
quantization/variation (the Fig. 8 pipeline), plus algorithm-circuit
correspondence (the codesign claim itself)."""

import numpy as np
import pytest

from repro.core import (
    CrossEntropyRateLoss,
    NeuronParameters,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
)
from repro.core.calibration import calibrate_firing
from repro.core.neurons import AdaptiveLIFNeuron
from repro.data import SyntheticSHDConfig, generate_shd
from repro.hardware import (
    HardwareMappedNetwork,
    NeuronCircuitConfig,
    RRAMDeviceConfig,
    accuracy_under_variation,
    simulate_neuron,
)


@pytest.fixture(scope="module")
def trained_classifier():
    dataset = generate_shd(
        SyntheticSHDConfig(n_per_class=6, steps=60), rng=0)
    train, test = dataset.split(0.75, rng=1)
    network = SpikingNetwork((700, 48, 20), rng=2)
    calibrate_firing(network, train.inputs[:24], target_rate=0.08)
    trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
        epochs=8, batch_size=24, learning_rate=2e-3), rng=3)
    trainer.fit(train.inputs, train.targets)
    float_acc = trainer.evaluate(test.inputs, test.targets)["accuracy"]
    return network, test, float_acc


class TestFig8Pipeline:
    def test_high_precision_no_variation_preserves_accuracy(
            self, trained_classifier):
        network, test, float_acc = trained_classifier
        mean, _ = accuracy_under_variation(
            network, test.inputs, test.targets, bits=10, variation=0.0,
            n_seeds=1, rng=0)
        assert mean == pytest.approx(float_acc, abs=0.05)

    def test_four_bits_close_to_float(self, trained_classifier):
        network, test, float_acc = trained_classifier
        mean, _ = accuracy_under_variation(
            network, test.inputs, test.targets, bits=4, variation=0.0,
            n_seeds=2, rng=1)
        # Paper Fig. 8: 4-bit costs well under 1 pt at zero deviation; our
        # reduced model allows a few points of slack.
        assert mean > float_acc - 0.15

    def test_extreme_variation_hurts_more_than_none(self, trained_classifier):
        network, test, _ = trained_classifier
        clean, _ = accuracy_under_variation(
            network, test.inputs, test.targets, bits=4, variation=0.0,
            n_seeds=3, rng=2)
        noisy, _ = accuracy_under_variation(
            network, test.inputs, test.targets, bits=4, variation=0.8,
            n_seeds=3, rng=2)
        assert noisy <= clean + 0.02

    def test_mapped_network_weight_errors_reported(self, trained_classifier):
        network, _, _ = trained_classifier
        mapped = HardwareMappedNetwork(
            network, RRAMDeviceConfig(levels=16, variation=0.2), rng=0)
        errors = mapped.weight_errors()
        assert len(errors) == len(network.layers)
        assert all(e > 0 for e in errors)


class TestAlgorithmCircuitCorrespondence:
    """The codesign claim: the analog circuit implements the discrete
    model.  A software AdaptiveLIFNeuron with parameters matched to the
    circuit (same tau in steps, same per-spike PSP increment, same bias)
    must agree with the transistor-level simulation on which input
    patterns elicit an output spike."""

    def _matched_software_spikes(self, spike_steps, total_steps,
                                 config: NeuronCircuitConfig) -> int:
        # Per-spike k jump after the RC filter and resistive divider.
        width_tau = config.step_ns * 1e-9 / config.tau_seconds
        k_jump = config.spike_amplitude * (1.0 - np.exp(-width_tau))
        divider = config.r_sense / (config.r_sense + config.r_memristor)
        psp_per_spike = k_jump * divider
        # The feedback h jump is the comparator pulse filtered by the same
        # RC; measured from the circuit's single-spike response (~0.06 V).
        params = NeuronParameters(
            tau=config.tau_steps, tau_r=config.tau_steps,
            v_th=config.v_bias, theta=0.06,
        )
        neuron = AdaptiveLIFNeuron(1, params)
        neuron.reset_state(1)
        # Synapse filter: k[t] = alpha*k[t-1] + psp_per_spike * spike[t].
        alpha = np.exp(-1.0 / config.tau_steps)
        k_val = 0.0
        spikes = 0
        for t in range(total_steps):
            k_val = alpha * k_val + (
                psp_per_spike if t in spike_steps else 0.0)
            out, _ = neuron.step(np.array([[k_val]]))
            spikes += int(out[0, 0])
        return spikes

    @pytest.mark.parametrize("spike_steps,label", [
        ((5, 7, 9), "burst-of-3"),
        ((5,), "single"),
        ((5, 25), "two-far-apart"),
        ((5, 7, 9, 11), "burst-of-4"),
    ])
    def test_spike_decisions_agree(self, spike_steps, label):
        config = NeuronCircuitConfig()
        times_ns = [s * config.step_ns for s in spike_steps]
        circuit = simulate_neuron(times_ns, config=config,
                                  duration_ns=max(times_ns) + 400)
        circuit_spikes = circuit.output_spike_count()
        software_spikes = self._matched_software_spikes(
            set(spike_steps), int(max(spike_steps)) + 40, config)
        assert (circuit_spikes > 0) == (software_spikes > 0), (
            f"{label}: circuit={circuit_spikes}, software={software_spikes}"
        )
