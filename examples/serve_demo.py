"""Serve-demo: boot the model server from a registry checkpoint and
stream one SHD-shaped sample through a live session.

This is the serving stack end-to-end (``make serve-demo``):

1. a versioned :class:`~repro.serve.ModelRegistry` under
   ``artifacts/registry`` (a 700-128-128-20 SHD-architecture checkpoint
   is created and saved on first run — calibrated, not trained: the demo
   shows the serving plumbing, not accuracy);
2. a :class:`~repro.serve.ModelServer` cold-started from the registry's
   latest version;
3. one synthetic SHD sample (``repro.data.shd``: formant speech through
   the artificial cochlea, ``(100, 700)`` spikes) streamed through a
   session in 10-step chunks — per-chunk output spikes arrive
   incrementally, and the streamed output is verified bitwise against a
   single whole-sequence pass of the same sample (chunk-invariance is
   the streaming engine's contract; see docs/serving.md).

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import os

import numpy as np

from repro import ModelRegistry, ModelServer, SpikingNetwork
from repro.core.calibration import calibrate_firing
from repro.data.shd import SHD_CLASS_NAMES, SyntheticSHDConfig, generate_shd

REGISTRY_ROOT = os.path.join("artifacts", "registry")
MODEL = "shd-mlp"
CHUNK = 10


def ensure_checkpoint(registry: ModelRegistry, sample_inputs) -> str:
    """Save a calibrated SHD-architecture checkpoint on first run."""
    version = registry.latest(MODEL)
    if version is not None:
        return version
    network = SpikingNetwork((700, 128, 128, 20), rng=0)
    calibrate_firing(network, sample_inputs, target_rate=0.1)
    return registry.save(MODEL, network,
                         meta={"task": "synthetic-shd", "trained": False,
                               "note": "calibrated demo checkpoint"})


def main():
    print(__doc__)
    dataset = generate_shd(SyntheticSHDConfig(n_per_class=1))
    registry = ModelRegistry(REGISTRY_ROOT)
    version = ensure_checkpoint(registry, dataset.inputs[:8])
    print(f"registry {REGISTRY_ROOT}: serving {MODEL}:{version} "
          f"({len(registry.versions(MODEL))} version(s) on disk)")

    server = ModelServer.from_registry(registry, MODEL, max_batch=8,
                                       max_wait_ms=2.0)
    sample = dataset.inputs[3]          # (100, 700) spike raster
    target = int(dataset.targets[3])
    session = server.open_session()
    print(f"\nstreaming one sample (class {SHD_CLASS_NAMES[target]!r}) "
          f"through session {session} in {CHUNK}-step chunks:")

    chunks = []
    for start in range(0, sample.shape[0], CHUNK):
        outputs = server.infer(session, sample[start:start + CHUNK])
        chunks.append(outputs)
        print(f"  steps {start:3d}-{start + outputs.shape[0] - 1:3d}: "
              f"{int(outputs.sum()):3d} output spikes"
              f"  (session total {server.session(session).steps} steps)")

    streamed = np.concatenate(chunks, axis=0)
    rates = streamed.sum(axis=0)
    predicted = int(rates.argmax())
    # Reference: the same sample in ONE chunk.  (A plain `run` is only
    # bitwise-comparable when its sparse probe picks CSR at every layer —
    # true at serving scale, but this demo's hidden layers sit below the
    # probe threshold; the streaming engine's chunk-invariance guarantee
    # is unconditional.)
    offline, _ = server.network.run_stream(sample[None])
    match = np.array_equal(offline[0], streamed)
    print(f"\nrate-code prediction: {SHD_CLASS_NAMES[predicted]!r} "
          f"(target {SHD_CLASS_NAMES[target]!r}; untrained demo weights)")
    print(f"streamed chunks == single whole-sequence pass: {match}")
    if not match:
        raise SystemExit("streamed and whole-sequence outputs diverged")


if __name__ == "__main__":
    main()
