"""Serving-path coverage for every real workload.

The server has only ever streamed synthetic SHD-shaped chunks; these
tests push one *speech*, one *DVS*, and one *glyph* sample each through
:class:`~repro.serve.server.ModelServer` end-to-end and pin the core
serving guarantee on those paths too: the streamed outputs (chunked
through sessions and coalesced ticks) are bitwise-identical to the
offline ``run_batch`` of the same sample — mirroring the synthetic-SHD
check in ``tests/unit/test_serve.py``.

Plus the workload layer itself: deterministic pools, mix composition,
registry errors, and ``open_loop``'s workload plumbing (including the
channel-width guard against serving a 2312-channel DVS stream into a
700-input network).
"""

import numpy as np
import pytest

from repro.common.errors import ExperimentError, ShapeError
from repro.common.rng import RandomState
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.serve import ModelServer
from repro.serve.loadgen import open_loop
from repro.serve.workloads import (
    DVSWorkload,
    GlyphWorkload,
    SpeechWorkload,
    SyntheticWorkload,
    WorkloadMix,
    make_workload,
)

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="bitwise batching transparency requires scipy's CSR product")

#: Small pools keep the sensor simulations fast; steps stay real-sized.
POOL = dict(pool_size=2, pool_steps=40)


def make_net(n_in, seed=1):
    net = SpikingNetwork((n_in, 16, 8), rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def workload_cases():
    return [
        SpeechWorkload(seed=3, **POOL),
        DVSWorkload(seed=3, **POOL),
        GlyphWorkload(seed=3, pool_size=2),
    ]


class TestWorkloads:
    @pytest.mark.parametrize("name,channels", [
        ("synthetic", 700), ("speech", 700), ("dvs", 2312), ("glyph", 784),
    ])
    def test_registry_and_native_widths(self, name, channels):
        workload = make_workload(name, seed=0)
        assert workload.channels == channels
        assert workload.name == name

    def test_unknown_and_malformed_names_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            make_workload("audio")
        with pytest.raises(ExperimentError, match="malformed|unknown"):
            make_workload("speech+")
        with pytest.raises(ExperimentError, match="fixed native width"):
            make_workload("dvs", channels=700)

    @pytest.mark.parametrize("workload", workload_cases(),
                             ids=lambda w: w.name)
    def test_samples_are_spiking_and_shaped(self, workload):
        pytest.importorskip("scipy")
        chunk = workload.sample(12, rng=RandomState(0))
        assert chunk.shape == (12, workload.channels)
        assert chunk.dtype == np.float64
        # Integral non-negative spike counts; DVS events may exceed 1 per
        # step (multiple threshold crossings), matching repro.data.nmnist.
        assert np.array_equal(chunk, np.round(chunk))
        assert chunk.min() >= 0
        assert chunk.sum() > 0, f"{workload.name} sample carries no spikes"

    @pytest.mark.parametrize("workload_cls", [SpeechWorkload, DVSWorkload],
                             ids=["speech", "dvs"])
    def test_pool_deterministic_per_seed(self, workload_cls):
        pytest.importorskip("scipy")
        a = workload_cls(seed=7, **POOL)
        b = workload_cls(seed=7, **POOL)
        assert all(np.array_equal(x, y) for x, y in zip(a.pool, b.pool))
        # and the draw depends only on the caller's rng
        assert np.array_equal(a.sample(9, rng=RandomState(5)),
                              b.sample(9, rng=RandomState(5)))

    def test_long_chunks_tile_the_pool(self):
        pytest.importorskip("scipy")
        workload = DVSWorkload(seed=1, **POOL)
        steps = POOL["pool_steps"] * 2 + 5
        chunk = workload.sample(steps, rng=RandomState(2))
        assert chunk.shape == (steps, workload.channels)

    def test_mix_requires_matching_widths(self):
        with pytest.raises(ExperimentError, match="channel width"):
            WorkloadMix([SyntheticWorkload(channels=700),
                         SyntheticWorkload(channels=784)])

    def test_mix_adapts_synthetic_to_fixed_component(self):
        pytest.importorskip("scipy")
        mix = make_workload("glyph+synthetic", seed=0)
        assert mix.channels == 784
        chunk = mix.sample(8, rng=RandomState(3))
        assert chunk.shape == (8, 784)

    def test_density_reaches_synthetic_components(self):
        assert make_workload("synthetic", density=0.2).density == 0.2
        assert make_workload("synthetic").density == 0.03
        mix = make_workload("speech+synthetic", seed=0, density=0.2)
        densities = [w.density for w in mix.workloads
                     if isinstance(w, SyntheticWorkload)]
        assert densities == [0.2]

    def test_mix_draws_every_component(self):
        mix = WorkloadMix([SyntheticWorkload(channels=32, density=0.9),
                           SyntheticWorkload(channels=32, density=0.01)])
        rng = RandomState(0)
        densities = [float(mix.sample(20, rng).mean()) for _ in range(40)]
        assert any(d > 0.5 for d in densities), "dense component never drawn"
        assert any(d < 0.2 for d in densities), "sparse component never drawn"


class TestServingPaths:
    """Streamed == offline for each real workload — the tentpole checks."""

    @needs_scipy
    @pytest.mark.parametrize("workload", workload_cases(),
                             ids=lambda w: w.name)
    def test_streamed_equals_offline(self, workload):
        sample = workload.sample(12, rng=RandomState(11))
        net = make_net(workload.channels)
        server = ModelServer(net, max_batch=4, max_wait_ms=1.0)
        sid = server.open_session(now=0.0)
        streamed = []
        for chunk in (sample[:4], sample[4:9], sample[9:]):
            ticket = server.submit(sid, chunk, now=0.0)
            server.flush(now=0.0)
            streamed.append(ticket.outputs)
        offline = server.run_batch(sample[None], batch_size=1)[0]
        assert np.array_equal(np.concatenate(streamed), offline)
        server.close()

    @needs_scipy
    def test_coalesced_mixed_workloads_match_solo(self):
        """Chunks of different workloads coalesced into one tick equal
        each stream running alone — batching transparency holds for
        mixed real traffic, not just homogeneous synthetic chunks."""
        speech = SpeechWorkload(seed=3, **POOL)
        synthetic = SyntheticWorkload(channels=speech.channels)
        a = speech.sample(6, rng=RandomState(1))
        b = synthetic.sample(6, rng=RandomState(2))
        net = make_net(speech.channels)
        server = ModelServer(net, max_batch=4, max_wait_ms=1.0)
        sa, sb = server.open_session(now=0.0), server.open_session(now=0.0)
        ta = server.submit(sa, a, now=0.0)
        tb = server.submit(sb, b, now=0.0)
        server.flush(now=0.0)
        solo, _ = net.run_stream(a[None])
        assert np.array_equal(ta.outputs, solo[0])
        solo_b, _ = net.run_stream(b[None])
        assert np.array_equal(tb.outputs, solo_b[0])
        server.close()


class TestOpenLoopWorkloads:
    @needs_scipy
    @pytest.mark.parametrize("name", ["glyph", "glyph+synthetic"])
    def test_open_loop_with_real_workload(self, name):
        workload = make_workload(name, seed=0)
        net = make_net(workload.channels)
        with ModelServer(net, max_batch=4, max_wait_ms=1.0) as server:
            report = open_loop(server, sessions=4, requests=20,
                               chunk_steps=5, rate_rps=400.0, rng=3,
                               workload=workload)
        assert report.completed + report.rejected == 20
        assert report.throughput_rps > 0

    def test_channel_mismatch_rejected(self):
        net = make_net(24)
        with ModelServer(net) as server:
            with pytest.raises(ShapeError, match="2312.*24|channels"):
                open_loop(server, requests=4, workload="dvs")

    @needs_scipy
    def test_workload_none_keeps_legacy_chunks(self):
        """The default path is bitwise-unchanged: same rng, same report."""
        net = make_net(24)
        with ModelServer(net, max_batch=4, max_wait_ms=1.0) as server:
            legacy = open_loop(server, sessions=4, requests=16,
                               chunk_steps=5, rate_rps=300.0, rng=9)
        net2 = make_net(24)
        with ModelServer(net2, max_batch=4, max_wait_ms=1.0) as server:
            explicit = open_loop(server, sessions=4, requests=16,
                                 chunk_steps=5, rate_rps=300.0, rng=9,
                                 workload=None)
        assert legacy.completed == explicit.completed
        assert legacy.submitted == explicit.submitted
