"""The paper's Table I hyper-parameters as a frozen config.

Every experiment runner pulls its defaults from here, so the reproduction
deviates from the paper only where a parameter is explicitly overridden
(and those overrides are recorded in each experiment's metadata).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.tables import Table

__all__ = ["PaperConfig", "PAPER_CONFIG", "table1"]


@dataclasses.dataclass(frozen=True)
class PaperConfig(BaseConfig):
    """Table I of the paper.

    Attributes
    ----------
    optimizer:
        ``AdamW``.
    batch_size:
        64.
    tau:
        Synapse/membrane time constant (steps): 4.
    tau_r:
        Reset-filter time constant: 4.
    tau_m, tau_s:
        Van Rossum kernel constants: 4 and 1.
    lr_classification:
        1e-4.
    lr_association:
        1e-3.
    sigma:
        Surrogate sharpness ``1/sqrt(2*pi)``.
    """

    optimizer: str = "adamw"
    batch_size: int = 64
    tau: float = 4.0
    tau_r: float = 4.0
    tau_m: float = 4.0
    tau_s: float = 1.0
    lr_classification: float = 1e-4
    lr_association: float = 1e-3
    sigma: float = 1.0 / np.sqrt(2.0 * np.pi)

    def validate(self) -> None:
        self.require_positive("batch_size")
        self.require_positive("tau")
        self.require_positive("tau_r")
        self.require_positive("lr_classification")
        self.require_positive("lr_association")
        self.require_positive("sigma")


PAPER_CONFIG = PaperConfig()


def table1() -> Table:
    """Render Table I."""
    cfg = PAPER_CONFIG
    table = Table(["Parameter", "Value"], title="Table I: Parameters")
    table.add_row(["Optimizer", "AdamW"])
    table.add_row(["Batch size", cfg.batch_size])
    table.add_row(["Learning rate (classification)", cfg.lr_classification])
    table.add_row(["Learning rate (pattern association)", cfg.lr_association])
    table.add_row(["tau", cfg.tau])
    table.add_row(["tau_r", cfg.tau_r])
    table.add_row(["tau_m", cfg.tau_m])
    table.add_row(["tau_s", cfg.tau_s])
    table.add_row(["sigma", f"1/sqrt(2*pi) = {cfg.sigma:.6f}"])
    return table
