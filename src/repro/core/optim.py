"""Gradient-descent optimizers (the paper trains with AdamW, Table I).

Optimizers hold references to live parameter arrays (e.g.
``network.weights``) and update them *in place*, so the owning layers see
every step without re-wiring.

Provided: :class:`SGD` (with momentum), :class:`Adam`, :class:`AdamW`
(decoupled weight decay, the paper's choice), and
:func:`clip_grad_norm` for global-norm clipping.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm", "make_optimizer"]


class Optimizer:
    """Base class: holds parameters, validates gradients, counts steps."""

    def __init__(self, params: list[np.ndarray], lr: float):
        if not params:
            raise ValueError("optimizer needs at least one parameter array")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)
        self.step_count = 0

    def _check(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ShapeError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        for i, (p, g) in enumerate(zip(self.params, grads)):
            if p.shape != g.shape:
                raise ShapeError(
                    f"parameter {i}: grad shape {g.shape} != param {p.shape}"
                )

    def step(self, grads: list[np.ndarray]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[np.ndarray], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.velocity = [np.zeros_like(p) for p in self.params]

    def step(self, grads: list[np.ndarray]) -> None:
        self._check(grads)
        self.step_count += 1
        for p, g, v in zip(self.params, grads, self.velocity):
            v *= self.momentum
            v += g
            p -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.m = [np.zeros_like(p) for p in self.params]
        self.v = [np.zeros_like(p) for p in self.params]

    def _update(self, p, g, m, v) -> np.ndarray:
        """Compute the Adam step direction (shared with AdamW)."""
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g * g
        m_hat = m / (1.0 - self.beta1 ** self.step_count)
        v_hat = v / (1.0 - self.beta2 ** self.step_count)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self, grads: list[np.ndarray]) -> None:
        self._check(grads)
        self.step_count += 1
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            p -= self.lr * self._update(p, g, m, v)


class AdamW(Adam):
    """Adam with *decoupled* weight decay (Loshchilov & Hutter).

    The paper's optimizer (Table I).  Decay is applied directly to the
    parameters, not mixed into the gradient moments.
    """

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(params, lr, betas=betas, eps=eps)
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.weight_decay = float(weight_decay)

    def step(self, grads: list[np.ndarray]) -> None:
        self._check(grads)
        self.step_count += 1
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            p -= self.lr * self.weight_decay * p
            p -= self.lr * self._update(p, g, m, v)


def clip_grad_norm(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging exploding gradients).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


def make_optimizer(name: str, params: list[np.ndarray], lr: float,
                   **kwargs) -> Optimizer:
    """Factory by name: ``sgd`` / ``adam`` / ``adamw``."""
    registry = {"sgd": SGD, "adam": Adam, "adamw": AdamW}
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; available: {sorted(registry)}"
        ) from None
    return cls(params, lr=lr, **kwargs)
