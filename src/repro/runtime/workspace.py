"""Reusable buffer arenas for the fused engine's steady-state hot loop.

Every fused forward/backward pass allocates a handful of large
``(batch, T, n)`` tensors — spike buffers, membrane traces, adjoint scans —
whose shapes repeat identically batch after batch during training.  A
:class:`Workspace` turns those allocations into arena reuse: buffers are
checked out by exact ``(shape, dtype)`` key, handed back once the training
step that used them is finished, and served again on the next batch.  In
steady state (constant batch shape) the engine then performs *zero* large
allocations per step; the only remaining churn is the small foreign arrays
produced inside BLAS/SciPy calls.

Design rules that keep this safe:

* A workspace is **single-threaded state** — one per trainer, one per pool
  worker, one per model server (the serving tick's padded gather buffer
  and transient batched stream state recycle through it).  It is never
  shared across processes (each worker process builds its own).
* ``release`` ignores arrays the workspace did not hand out, so callers may
  bulk-release a record's tensors without tracking which of them came from
  the arena (e.g. a membrane trace produced by a SciPy sparse product is
  foreign and simply skipped).
* Reuse is **opt-in at the call site**: every engine entry point takes
  ``ws=None`` and behaves exactly as before when no workspace is supplied.
  Buffers that escape to user code (e.g. ``network.run`` outputs outside a
  trainer) are never pooled.

The workspace also caches the CSR row-boundary scratch used by the sparse
spike matmul (:func:`Workspace.row_bounds`): the ``arange(0, (m+1)*n, n)``
array consumed by ``searchsorted`` is a pure function of the flattened
spike-matrix shape, so in steady state the conversion allocates only the
per-batch nonzero index vectors.

Equivalence (with-workspace == without, bitwise) is pinned by
``tests/unit/test_runtime.py``, including across consecutive calls with
differing shapes.
"""

from __future__ import annotations

import collections

import numpy as np

__all__ = ["Workspace"]

#: Default cap on bytes parked in free lists before old buffers are dropped.
DEFAULT_MAX_BYTES = 1 << 29  # 512 MiB


class Workspace:
    """A keyed pool of reusable numpy buffers.

    Parameters
    ----------
    max_bytes:
        Soft cap on the total size of *idle* (released) buffers.  When a
        release would exceed it, the oldest idle buffers are dropped —
        important for sweeps whose shapes change between phases, so stale
        shapes do not pin memory forever.  Checked-out buffers are never
        counted against the cap.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._free: dict[tuple, list[np.ndarray]] = {}
        # id -> (key, array).  The strong reference is load-bearing: if a
        # checked-out buffer were garbage-collected, its id could be reused
        # by an unrelated array, and a later release() would pool that
        # array under the stale key — handing out wrong-shaped memory.
        self._lent: dict[int, tuple[tuple, np.ndarray]] = {}
        self._fifo: collections.deque[tuple] = collections.deque()
        self._free_bytes = 0
        self._row_bounds: dict[tuple[int, int], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # -- checkout / return --------------------------------------------------
    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialised buffer of exactly ``(shape, dtype)``.

        Pops a previously released buffer when one matches, else allocates.
        The caller owns the buffer until it is passed to :meth:`release`.
        """
        key = self._key(shape, dtype)
        stack = self._free.get(key)
        if stack:
            arr = stack.pop()
            self._free_bytes -= arr.nbytes
            # Keep the eviction queue in lockstep with the free lists:
            # one entry per *idle* buffer, so it stays bounded and
            # eviction really drops the oldest idle buffer.
            try:
                self._fifo.remove(key)
            except ValueError:  # pragma: no cover - queues are in lockstep
                pass
            self.hits += 1
        else:
            arr = np.empty(key[0], dtype=np.dtype(key[1]))
            self.misses += 1
        self._lent[id(arr)] = (key, arr)
        return arr

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`empty` but zero-filled."""
        arr = self.empty(shape, dtype)
        arr.fill(0)
        return arr

    def release(self, *arrays) -> None:
        """Hand buffers back to the pool.

        Arrays this workspace did not allocate (or ``None``) are ignored, so
        callers can release whole records without provenance bookkeeping.
        Releasing the same buffer twice in a row is also a no-op (the
        second call sees it as foreign) — but release a buffer **at most
        once per checkout**: the array object itself is the lease token,
        so a stale release issued *after* the buffer has been handed out
        again would return the new owner's live memory to the pool and
        alias two users onto it.  The engine/trainer integration releases
        only at end-of-step points where no stale references survive.
        """
        for arr in arrays:
            if arr is None:
                continue
            entry = self._lent.pop(id(arr), None)
            if entry is None:
                continue
            key = entry[0]
            self._free.setdefault(key, []).append(arr)
            self._fifo.append(key)
            self._free_bytes += arr.nbytes
        while self._free_bytes > self.max_bytes and self._fifo:
            old_key = self._fifo.popleft()
            stack = self._free.get(old_key)
            if stack:
                dropped = stack.pop(0)
                self._free_bytes -= dropped.nbytes

    # -- CSR scratch --------------------------------------------------------
    def row_bounds(self, m: int, n: int) -> np.ndarray:
        """Cached ``arange(0, (m+1)*n, n)`` for direct CSR construction."""
        key = (int(m), int(n))
        bounds = self._row_bounds.get(key)
        if bounds is None:
            bounds = np.arange(0, (m + 1) * n, n)
            self._row_bounds[key] = bounds
        return bounds

    # -- maintenance --------------------------------------------------------
    def reclaim(self) -> None:
        """Drop every idle buffer and cached scratch (checked-out buffers
        stay valid; they are simply forgotten when released)."""
        self._free.clear()
        self._fifo.clear()
        self._free_bytes = 0
        self._lent.clear()
        self._row_bounds.clear()

    @property
    def idle_bytes(self) -> int:
        """Total bytes currently parked in free lists."""
        return self._free_bytes

    @property
    def lent_count(self) -> int:
        """Number of buffers currently checked out."""
        return len(self._lent)

    def __repr__(self) -> str:
        return (f"Workspace(idle={self._free_bytes >> 20} MiB, "
                f"lent={len(self._lent)}, hits={self.hits}, "
                f"misses={self.misses})")
