"""Property tests for spike-train distances (metric axioms) and the data
generators (determinism, shape contracts)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import van_rossum_distance, victor_purpura_distance
from repro.core.loss import VanRossumLoss
from repro.data.glyphs import render_digit

spike_trains = hnp.arrays(
    dtype=np.float64, shape=st.integers(min_value=2, max_value=40),
    elements=st.sampled_from([0.0, 1.0]),
)


@given(a=spike_trains)
@settings(max_examples=60, deadline=None)
def test_van_rossum_identity(a):
    assert van_rossum_distance(a, a) == 0.0


@given(a=spike_trains, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_van_rossum_symmetry_and_nonnegativity(a, seed):
    rng = np.random.default_rng(seed)
    b = (rng.random(a.shape) < 0.3).astype(float)
    d_ab = van_rossum_distance(a, b)
    d_ba = van_rossum_distance(b, a)
    assert d_ab >= 0.0
    np.testing.assert_allclose(d_ab, d_ba, rtol=1e-12)


@given(a=spike_trains, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_van_rossum_discriminates(a, seed):
    """Flipping one non-final bin must give a strictly positive distance.

    (A flip in the *final* bin is invisible: the paper's kernel has
    f[0] = 0, so a spike needs at least one later step to influence the
    trace — an intentional property of eq. 15's biphasic kernel.)
    """
    rng = np.random.default_rng(seed)
    index = int(rng.integers(0, a.shape[0] - 1))
    b = a.copy()
    b[index] = 1.0 - b[index]
    assert van_rossum_distance(a, b) > 0.0


@given(a=spike_trains, seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_victor_purpura_axioms(a, seed):
    rng = np.random.default_rng(seed)
    b = (rng.random(a.shape) < 0.3).astype(float)
    assert victor_purpura_distance(a, a) == 0.0
    d_ab = victor_purpura_distance(a, b)
    assert d_ab >= 0.0
    np.testing.assert_allclose(d_ab, victor_purpura_distance(b, a),
                               rtol=1e-9)


@given(a=spike_trains, seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_victor_purpura_triangle_inequality(a, seed):
    rng = np.random.default_rng(seed)
    b = (rng.random(a.shape) < 0.3).astype(float)
    c = (rng.random(a.shape) < 0.3).astype(float)
    d_ac = victor_purpura_distance(a, c)
    d_ab = victor_purpura_distance(a, b)
    d_bc = victor_purpura_distance(b, c)
    assert d_ac <= d_ab + d_bc + 1e-9


@given(
    batch=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=2, max_value=20),
    trains=st.integers(min_value=1, max_value=5),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_van_rossum_loss_gradient_descends(batch, steps, trains, seed):
    """A small step against the gradient must not increase the loss
    (first-order descent property on the smooth loss surface)."""
    rng = np.random.default_rng(seed)
    outputs = rng.random((batch, steps, trains))
    targets = (rng.random((batch, steps, trains)) < 0.3).astype(float)
    loss = VanRossumLoss()
    value, grad = loss.value_and_grad(outputs, targets)
    stepped = outputs - 1e-4 * grad
    new_value, _ = loss.value_and_grad(stepped, targets)
    assert new_value <= value + 1e-12


@given(digit=st.integers(min_value=0, max_value=9),
       seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None)
def test_glyphs_always_renderable(digit, seed):
    """Any digit with any jitter seed renders to a non-empty, in-range
    image (no geometry blowups from the random affine)."""
    image = render_digit(digit, size=28, rng=seed)
    assert image.shape == (28, 28)
    assert 0.0 <= image.min()
    assert image.max() <= 1.0
    assert image.sum() > 5.0
