"""Serving benchmark: open-loop arrivals through the micro-batching server.

Drives synthetic Poisson request streams (``repro.serve.loadgen``) through
a resident :class:`~repro.serve.server.ModelServer` on the repo's standard
benchmark shape (700-128-128-20 adaptive MLP, ``repro.common.benchcfg``)
and reports the serving metrics the offline benchmarks cannot measure:
**throughput_rps** and **p50/p95/p99 arrival-to-answer latency** per
offered load.

Configurations cover the ideal model (both precisions) *and* the
hardware realization side by side: ``hardware_float64`` serves a
4-bit/10%-variation crossbar mapping of the same network through the
engine's weight-override hook (same kernels — the cost delta is the
honest price of hardware-in-the-loop serving, expected ~zero), and
``shadow_float64`` runs ideal + hardware on every stream (expected ~2x
tick compute) while recording the mean per-chunk output divergence.

Three load points per engine configuration:

* ``light``  — well under capacity: latency is dominated by the
  ``max_wait_ms`` coalescing window (the latency floor);
* ``heavy``  — near capacity: ticks run back-to-back at high occupancy
  (the throughput plateau);
* ``overload`` — offered load beyond capacity: the bounded queue rejects
  (backpressure) instead of growing latency without bound.

Run standalone (prints a table)::

    PYTHONPATH=src python benchmarks/bench_serving.py

or via ``make bench-serving`` / ``tools/bench_to_json.py --serving`` to
write ``BENCH_serving.json``.  Named explicitly to pytest
(``pytest benchmarks/bench_serving.py``) it runs reduced smoke scenarios
only; the tier-1 hardware/shadow serving coverage lives in
``tests/unit/test_serve.py``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.benchcfg import BENCH_SIZES, BENCH_SPIKE_DENSITY, bench_network
from repro.hardware import HardwareProfile
from repro.serve import ModelServer
from repro.serve.loadgen import open_loop

#: Offered-load scenarios (chunks/s).  Rates bracket the measured 1-core
#: capacity of the standard shape (~6k chunks/s at chunk_steps=10,
#: max_batch=16 — see docs/serving.md for the measured table).
SCENARIOS = [
    {"id": "light", "rate_rps": 300.0, "requests": 300},
    {"id": "heavy", "rate_rps": 4000.0, "requests": 800},
    {"id": "overload", "rate_rps": 20000.0, "requests": 1200},
]

#: Hardware realization served by the hardware-backed configurations
#: (Fig. 8's 4-bit column at 10 % process variation).
HW_PROFILE = {"bits": 4, "variation": 0.1, "seed": 7}

#: Server configurations measured per scenario: the ideal model at both
#: precisions, the crossbar realization, and the shadow (ideal + hardware
#: per stream) canary.
CONFIGS = [
    {"id": "fused_float64", "engine": "fused", "precision": "float64"},
    {"id": "fused_float32", "engine": "fused", "precision": "float32"},
    {"id": "hardware_float64", "engine": "fused", "precision": "float64",
     "hardware": HW_PROFILE},
    {"id": "shadow_float64", "engine": "fused", "precision": "float64",
     "hardware": HW_PROFILE, "shadow": True},
]

SESSIONS = 32
CHUNK_STEPS = 10
MAX_BATCH = 16
MAX_WAIT_MS = 5.0
QUEUE_LIMIT = 128


def serve_scenario(config: dict, scenario: dict, sessions: int = SESSIONS,
                   chunk_steps: int = CHUNK_STEPS) -> dict:
    """One (server config, load point) measurement; returns the report dict."""
    network = bench_network()
    hardware = None
    if config.get("hardware"):
        hardware = HardwareProfile.create(**config["hardware"]).build(network)
    server = ModelServer(
        network, engine=config["engine"],
        precision=config["precision"], max_batch=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS, queue_limit=QUEUE_LIMIT,
        hardware=hardware, shadow=config.get("shadow", False),
    )
    try:
        report = open_loop(
            server, sessions=sessions, requests=scenario["requests"],
            chunk_steps=chunk_steps, rate_rps=scenario["rate_rps"],
            spike_density=BENCH_SPIKE_DENSITY, rng=7,
        )
    finally:
        server.close()
    return report.to_dict()


def run_serving_bench(scenarios=None, configs=None) -> dict:
    """The full grid; shape of the returned dict matches
    ``BENCH_serving.json``'s ``serving`` section."""
    out: dict = {}
    for config in configs or CONFIGS:
        rows = {}
        for scenario in scenarios or SCENARIOS:
            rows[scenario["id"]] = serve_scenario(config, scenario)
            print(f"{config['id']:>14} {scenario['id']:>9}: "
                  f"{_render_row(rows[scenario['id']])}")
        out[config["id"]] = rows
    return out


def _render_row(row: dict) -> str:
    lat = row["latency_ms"]

    def ms(key: str) -> str:
        # None when nothing completed (total rejection) — keep printable.
        return "    n/a   " if lat[key] is None else f"{lat[key]:7.2f} ms"

    shadow = (f"  div {row['divergence']:.4f}"
              if row.get("divergence") is not None else "")
    return (f"offered {row['offered_rps']:7.0f} rps  served "
            f"{row['throughput_rps']:7.0f} rps  rejected {row['rejected']:4d}  "
            f"batch {row['mean_batch']:5.2f}  p50 {ms('p50')}  "
            f"p95 {ms('p95')}  p99 {ms('p99')}{shadow}")


def serving_meta() -> dict:
    return {
        "sizes": list(BENCH_SIZES),
        "sessions": SESSIONS,
        "chunk_steps": CHUNK_STEPS,
        "max_batch": MAX_BATCH,
        "max_wait_ms": MAX_WAIT_MS,
        "queue_limit": QUEUE_LIMIT,
        "spike_density": BENCH_SPIKE_DENSITY,
        "hardware_profile": dict(HW_PROFILE),
        "arrivals": "poisson open-loop, virtual arrival clock + measured "
                    "tick compute (see repro/serve/loadgen.py)",
    }


# -- pytest entry point (reduced scale) -------------------------------------

def test_serving_smoke():
    """Structure check on a reduced load point (fast; run explicitly or
    via the tier-1-adjacent bench invocation)."""
    row = serve_scenario(CONFIGS[0],
                         {"id": "smoke", "rate_rps": 500.0, "requests": 40},
                         sessions=8)
    assert row["completed"] + row["rejected"] == 40
    assert row["throughput_rps"] > 0
    for key in ("p50", "p95", "p99"):
        assert row["latency_ms"][key] >= 0


def test_hardware_serving_smoke():
    """The hardware and shadow configs run, and shadow reports a
    divergence number."""
    configs = {config["id"]: config for config in CONFIGS}
    hw = serve_scenario(configs["hardware_float64"],
                        {"id": "smoke", "rate_rps": 500.0, "requests": 25},
                        sessions=8)
    assert hw["completed"] + hw["rejected"] == 25
    assert hw["divergence"] is None          # nothing to diff against
    shadow = serve_scenario(configs["shadow_float64"],
                            {"id": "smoke", "rate_rps": 500.0,
                             "requests": 25}, sessions=8)
    assert shadow["completed"] + shadow["rejected"] == 25
    assert 0.0 <= shadow["divergence"] <= 1.0


def main() -> int:
    print(__doc__.splitlines()[0])
    run_serving_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
