"""Persistent multi-process worker pool with shared-memory data plane.

This is the execution backend of the parallel runtime: a set of long-lived
worker processes, each holding a live replica of the master's
:class:`~repro.core.network.SpikingNetwork` whose weight arrays are **views
into one shared-memory block** — the master memcpys updated weights into
that block once per dispatch (:meth:`WorkerPool.sync_weights`, ~100 µs for
the paper-scale MLPs) and every worker reads them zero-copy.

Large tensors never cross the command pipes.  Four shared-memory arenas
carry them instead:

========  =======================================================
arena     contents
========  =======================================================
inputs    the staged mini-batch / evaluation set (all workers read)
targets   training targets (labels or spike targets)
outputs   forward results, written at disjoint per-chunk offsets
grads     per-worker weight-gradient regions (64-byte aligned)
========  =======================================================

The pipes carry only small command dicts — arena references
``{name, shape, dtype, offset}``, shard bounds, scalars — and small
replies (loss values, accuracies, pickled task results).

Work units are deliberately identical to the serial path's:

* ``grad`` runs :func:`repro.runtime.parallel.shard_grads` — the same
  function the serial fallback calls in-process — so pooled gradients are
  bitwise-equal to a serial execution of the same shard split;
* ``forward`` runs one ``batch_size`` chunk of a sharded inference, the
  same chunks ``run_in_batches`` would process serially;
* ``hw_eval`` runs one device-noise seed of the Fig. 8 sweep via
  :func:`repro.hardware.mapped_network.seed_accuracy`;
* ``task`` runs an arbitrary picklable callable (sweep grid points).

Each worker owns a :class:`~repro.runtime.workspace.Workspace`, so
steady-state training allocates nothing per batch on either side of the
pipe.  Failures split into two kinds with opposite handling:

* a :class:`WorkerError` — user code raised *inside* a worker — is
  caught there, formatted, and re-raised in the master with the worker
  traceback attached.  Deterministic code fails deterministically, so
  these are never retried;
* a :class:`PoolTransportError` — dead process, reply timeout, corrupt
  reply — triggers **self-healing**: a
  :class:`~repro.runtime.supervisor.WorkerSupervisor` respawns the
  failed worker from the original spec and the dispatch requeues
  exactly its in-flight commands, with bounded attempts and exponential
  backoff.  Because the arenas are master-owned and replicas rebuild
  deterministically, a healed dispatch returns results bitwise-equal to
  a fault-free run.

Fault injection (:mod:`repro.common.faults`): constructing a pool under
an active :class:`~repro.common.faults.FaultPlan` snapshots the plan
into the ``_PoolSpec``; each worker generation installs a fresh copy
with ``worker=index, generation=n`` context and consults the
``pool.worker.crash`` / ``pool.worker.hang`` / ``pool.reply.corrupt``
sites, so crash-recovery paths are exercised reproducibly in tests and
chaos scenarios.
"""

from __future__ import annotations

import atexit
import collections
import dataclasses
import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref
from multiprocessing import shared_memory

import numpy as np

from .. import obs as _obs
from ..common import faults as _faults
from .supervisor import RestartPolicy, WorkerSupervisor

__all__ = ["WorkerPool", "WorkerError", "PoolTransportError", "PoolCache"]

#: Pools that still own shared-memory segments.  An atexit hook closes
#: them because ``__del__`` alone is not enough at interpreter shutdown:
#: a frozen daemon thread blocked in a dispatch keeps its pool reachable
#: forever, the segments are never unlinked, and the multiprocessing
#: resource tracker prints a "leaked shared_memory objects" warning.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - exercised in a
    for pool in list(_LIVE_POOLS):  # subprocess by tests/unit/test_runtime.py
        try:
            pool.close()
        except Exception:
            pass


class WorkerError(RuntimeError):
    """An exception raised *inside* a worker, re-raised in the master.

    Distinct from transport failures (dead worker, timeout): the worker
    survives a :class:`WorkerError` and its pipe stays usable, so the pool
    drains in-flight replies and remains open.
    """


class PoolTransportError(RuntimeError):
    """The pipe to one or more workers can no longer be trusted.

    Raised when a worker process dies, stops replying within the
    timeout, or delivers a reply that violates the protocol.  Carries
    the affected worker indices in :attr:`workers` so the dispatch loop
    can heal exactly those workers and requeue their in-flight shards.
    Reaches callers only once the per-dispatch restart budget is
    exhausted (the pool is closed first).
    """

    def __init__(self, message: str, workers=()):
        super().__init__(message)
        self.workers = tuple(workers)


_ALIGN = 64  # byte alignment for per-layer / per-worker shm regions


def _default_start_method() -> str:
    env = os.environ.get("REPRO_MP_START", "").strip()
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------
class _Arena:
    """A master-owned, grow-on-demand shared-memory block."""

    def __init__(self, tag: str):
        self.tag = tag
        self._shm: shared_memory.SharedMemory | None = None
        self.capacity = 0

    def ensure(self, nbytes: int) -> None:
        if nbytes <= self.capacity:
            return
        new_capacity = _aligned(max(nbytes, 2 * self.capacity, 4096))
        old = self._shm
        self._shm = shared_memory.SharedMemory(create=True, size=new_capacity)
        self.capacity = new_capacity
        if old is not None:
            old.close()
            old.unlink()

    def ref(self, shape, dtype, offset: int = 0) -> dict:
        """A picklable handle a worker can attach and view."""
        return {
            "name": self._shm.name,
            "shape": tuple(int(s) for s in shape),
            "dtype": np.dtype(dtype).str,
            "offset": int(offset),
        }

    def view(self, shape, dtype, offset: int = 0) -> np.ndarray:
        return np.ndarray(tuple(int(s) for s in shape), dtype=np.dtype(dtype),
                          buffer=self._shm.buf, offset=int(offset))

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None
            self.capacity = 0


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class _PoolSpec:
    """Everything a worker needs to rebuild the master's network."""

    sizes: tuple | None
    params: object | None
    neuron_kind: str | None
    surrogates: list | None
    weight_ref: dict | None      # one block, all layers
    weight_offsets: list | None  # per-layer byte offsets into the block
    weight_shapes: list | None
    loss: object | None
    #: Snapshot of the fault plan active when the pool was built; each
    #: worker generation installs a fresh (zero-counter) copy.
    fault_plan: object | None = None


class _WorkerState:
    """Per-process state: attached blocks, network replicas, workspace."""

    def __init__(self, spec: _PoolSpec):
        from .workspace import Workspace

        self.spec = spec
        self.blocks: dict[str, shared_memory.SharedMemory] = {}
        self.networks: dict[str, object] = {}
        self.ws = Workspace()

    #: Keep at most this many non-weight blocks attached; arena growth on
    #: the master side replaces segments (new names), and holding the old
    #: attachments would pin the unlinked memory for the worker's lifetime.
    MAX_CACHED_BLOCKS = 8

    def view(self, ref: dict) -> np.ndarray:
        shm = self.blocks.pop(ref["name"], None)
        if shm is None:
            shm = shared_memory.SharedMemory(name=ref["name"])
        self.blocks[ref["name"]] = shm  # reinsert: dict order tracks LRU
        return np.ndarray(ref["shape"], dtype=np.dtype(ref["dtype"]),
                          buffer=shm.buf, offset=ref["offset"])

    def prune_blocks(self) -> None:
        """Drop least-recently-used attachments beyond the cache limit.

        Called between commands only — numpy views of arena blocks never
        outlive a command handler, so closing here is safe.  The weights
        block is exempt: the cached network replicas hold permanent views
        into it.
        """
        spec = self.spec
        protected = ({spec.weight_ref["name"]}
                     if spec.weight_ref is not None else set())
        excess = len(self.blocks) - self.MAX_CACHED_BLOCKS
        if excess <= 0:
            return
        for name in list(self.blocks):
            if excess <= 0:
                break
            if name in protected:
                continue
            self.blocks.pop(name).close()
            excess -= 1

    def network(self, neuron_kind: str | None = None):
        """The shared-weight network replica (variant kinds built lazily)."""
        spec = self.spec
        if spec.sizes is None:
            raise RuntimeError("this pool was created without a network")
        kind = neuron_kind or spec.neuron_kind
        net = self.networks.get(kind)
        if net is None:
            from ..core.network import SpikingNetwork

            net = SpikingNetwork(spec.sizes, params=spec.params,
                                 neuron_kind=kind, rng=0)
            for layer, surrogate, offset, shape in zip(
                    net.layers, spec.surrogates, spec.weight_offsets,
                    spec.weight_shapes):
                layer.weight = self.view(
                    dict(spec.weight_ref, shape=shape, offset=offset))
                layer.surrogate = surrogate
            self.networks[kind] = net
        return net

    def close(self) -> None:
        for shm in self.blocks.values():
            shm.close()
        self.blocks.clear()


def _worker_main(spec: _PoolSpec, conn, index: int = 0,
                 generation: int = 0) -> None:
    """Command loop executed in each worker process."""
    # Fault injection is spec-driven, never inherited: a forked child
    # starts with the master's active plan (shared counters and all), so
    # it is replaced with a fresh per-process copy — or removed.  The
    # context names this incarnation, letting rules target e.g. only the
    # original generation of worker 0.
    if spec.fault_plan is not None:
        _faults.install(spec.fault_plan.fresh(), worker=index,
                        generation=generation)
    else:
        _faults.deactivate()
    state = _WorkerState(spec)
    try:
        conn.send(("ready", os.getpid()))
        while True:
            # Worker side of the pipe: blocking on the master is the
            # design — the supervisor kills hung workers from outside.
            # repro: disable=concurrency
            msg = conn.recv()
            cmd = msg["cmd"]
            if cmd == "stop":
                break
            if _faults.should_fire("pool.worker.crash"):
                os._exit(13)  # hard crash: no cleanup, no reply
            rule = _faults.hit("pool.worker.hang")
            if rule is not None:
                # Stop replying for longer than any sane timeout; the
                # supervisor will terminate this process.
                time.sleep(3600.0 if rule.payload is None else rule.payload)
            try:
                reply = ("ok", _handle(state, msg))
            except Exception:
                # Any failure inside the command (including a user task
                # raising BrokenPipeError itself) is a worker error to
                # report, not a transport failure.
                reply = ("error", traceback.format_exc())
            if _faults.should_fire("pool.reply.corrupt"):
                reply = "corrupt-reply"  # protocol violation, not a 2-tuple
            try:
                conn.send(reply)
            except OSError:
                raise  # reply pipe gone (master closed/vanished): exit below
            except Exception:
                # The reply itself would not pickle; report that instead.
                conn.send(("error", traceback.format_exc()))
            state.prune_blocks()
    except (EOFError, BrokenPipeError, ConnectionResetError, OSError,
            KeyboardInterrupt):
        # Master vanished (or closed our pipe mid-reply) / interrupt:
        # normal shutdown paths, not worker errors — exit silently rather
        # than spraying tracebacks over the master's stderr.
        pass
    finally:
        state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def _handle(state: _WorkerState, msg: dict):
    cmd = msg["cmd"]
    if cmd == "forward":
        network = state.network(msg.get("neuron_kind"))
        x = state.view(msg["in"])
        out_view = state.view(msg["out"])
        outputs, _ = network.run(x, engine=msg["engine"],
                                 precision=msg["precision"],
                                 workspace=state.ws)
        np.copyto(out_view, outputs)
        state.ws.release(outputs)
        return None
    if cmd == "grad":
        from .parallel import shard_grads

        network = state.network()
        x = state.view(msg["in"])
        targets = state.view(msg["targets"])
        loss_value, shard_n, grads = shard_grads(
            network, state.spec.loss, x, targets, mode=msg["mode"],
            engine=msg["engine"], precision=msg["precision"], ws=state.ws)
        for grad, ref in zip(grads, msg["grads"]):
            # casting="no": the master sized the arena for the dtype this
            # engine/precision combination actually produces — a silent
            # downcast here would diverge from the serial path.
            np.copyto(state.view(ref), grad, casting="no")
        return loss_value, shard_n
    if cmd == "hw_eval":
        from ..hardware.mapped_network import seed_correct

        network = state.network()
        inputs = state.view(msg["in"])
        return seed_correct(
            network, inputs, state.view(msg["labels"]), bits=msg["bits"],
            variation=msg["variation"], seed=msg["seed"],
            batch_size=msg["batch_size"], engine=msg["engine"],
            precision=msg["precision"], device=msg.get("device"))
    if cmd == "task":
        fn, item = msg["payload"]
        return fn(item)
    raise ValueError(f"unknown pool command {cmd!r}")


# ---------------------------------------------------------------------------
# Master-side pool
# ---------------------------------------------------------------------------
class WorkerPool:
    """A persistent pool of worker processes sharing the network weights.

    Parameters
    ----------
    network:
        The master :class:`~repro.core.network.SpikingNetwork` to replicate
        (``None`` builds a generic pool that only serves :meth:`map`).
    workers:
        Number of worker processes (>= 1).
    loss:
        Loss object shipped to the workers for ``grad`` dispatches (must be
        picklable; both built-in losses are).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default from
        ``REPRO_MP_START``, else fork where available.
    timeout:
        Seconds to wait for any single worker reply before raising
        (default from ``REPRO_POOL_TIMEOUT``, else 600).
    restart_policy:
        Bounds and pacing of self-healing worker restarts (a
        :class:`~repro.runtime.supervisor.RestartPolicy`; the defaults
        allow 3 heal rounds per dispatch).
    """

    def __init__(self, network=None, workers: int = 1, loss=None,
                 start_method: str | None = None,
                 timeout: float | None = None,
                 restart_policy: RestartPolicy | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.network = network
        self.workers = int(workers)
        if timeout is None:
            timeout = float(os.environ.get("REPRO_POOL_TIMEOUT", "600"))
        self.timeout = timeout
        # Lifetime robustness counters live in a *private* registry (not
        # the installed telemetry's): pools outlive runs via PoolCache,
        # so binding them to one run's registry would strand the others.
        # The installed tracer is looked up per event instead.
        self.metrics = _obs.MetricsRegistry()
        self._c_restarts = self.metrics.counter(
            "pool.restarts", help="workers respawned by the supervisor")
        self._c_retries = self.metrics.counter(
            "pool.retries", help="in-flight commands requeued after a heal")
        self._c_dispatches = self.metrics.counter(
            "pool.dispatches", help="dispatch rounds sent to the fleet")
        self._c_timeouts = self.metrics.counter(
            "pool.timeouts", help="workers declared unresponsive (timeout)")
        self._supervisor = WorkerSupervisor(self, restart_policy)
        # Every attribute close() touches exists before anything that can
        # raise, so a failed constructor (bad start method, spawn failure)
        # still unlinks whatever shared memory it had already created.
        self._closed = False
        self._weights_shm: shared_memory.SharedMemory | None = None
        self._weight_views: list[np.ndarray] = []
        self._arenas: dict[str, _Arena] = {}
        self._conns = []
        self._procs = []
        self._generations = [0] * self.workers
        try:
            self._spec = self._build_spec(network, loss)
            self._arenas = {
                tag: _Arena(tag)
                for tag in ("inputs", "targets", "outputs", "grads")
            }
            self._ctx = mp.get_context(start_method
                                       or _default_start_method())
            for index in range(self.workers):
                proc, conn = self._spawn_worker(index)
                self._conns.append(conn)
                self._procs.append(proc)
            for index in range(self.workers):
                self._recv(index)  # "ready" handshake
        except Exception:
            self.close()
            raise
        _LIVE_POOLS.add(self)

    @property
    def stats(self) -> dict:
        """Lifetime robustness counters (a view over :attr:`metrics`).

        ``restarts`` (workers respawned), ``retries`` (in-flight
        commands requeued after a heal), ``dispatches`` (dispatch
        rounds), ``timeouts`` (workers declared unresponsive), and
        ``respawns`` (per-worker respawn counts, ``{index: count}``).
        """
        return {
            "restarts": int(self._c_restarts.value),
            "retries": int(self._c_retries.value),
            "dispatches": int(self._c_dispatches.value),
            "timeouts": int(self._c_timeouts.value),
            "respawns": {
                int(inst.labels[0][1]): int(inst.value)
                for inst in self.metrics.labelled("pool.respawns")
            },
        }

    def _spawn_worker(self, index: int):
        """Start one worker process for slot ``index`` (current generation)."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._spec, child_conn, index, self._generations[index]),
            daemon=True, name=f"repro-worker-{index}")
        proc.start()
        child_conn.close()
        return proc, parent_conn

    # -- construction helpers ----------------------------------------------
    def _build_spec(self, network, loss) -> _PoolSpec:
        # Snapshot the active fault plan (if any) so child processes
        # inject reproducibly no matter the start method.
        plan = _faults.active_plan()
        if network is None:
            return _PoolSpec(None, None, None, None, None, None, None, loss,
                             fault_plan=plan)
        offsets, shapes = [], []
        cursor = 0
        for layer in network.layers:
            offsets.append(cursor)
            shapes.append(layer.weight.shape)
            cursor += _aligned(layer.weight.nbytes)
        self._weights_shm = shared_memory.SharedMemory(create=True,
                                                       size=max(cursor, 8))
        self._weight_views = [
            np.ndarray(shape, dtype=np.float64, buffer=self._weights_shm.buf,
                       offset=offset)
            for shape, offset in zip(shapes, offsets)
        ]
        self.sync_weights()
        weight_ref = {"name": self._weights_shm.name, "shape": (),
                      "dtype": "<f8", "offset": 0}
        return _PoolSpec(
            sizes=network.sizes, params=network.params,
            neuron_kind=network.neuron_kind,
            surrogates=[layer.surrogate for layer in network.layers],
            weight_ref=weight_ref, weight_offsets=offsets,
            weight_shapes=shapes, loss=loss, fault_plan=plan,
        )

    def sync_weights(self, weights=None) -> None:
        """Memcpy the master network's current weights into shared memory.

        Every network-dispatch (:meth:`run_sharded`, :meth:`grad_shards`,
        :meth:`hw_eval`) calls this first — a ~100 µs memcpy for the paper
        MLP — so a pool reused across optimizer steps (or handed to
        ``run_in_batches(pool=...)`` after further training) always
        computes with the master's current weights.  Workers observe the
        update on their next command (pipe delivery orders the accesses).

        ``weights`` (optional per-layer arrays) stages an *override*
        instead of the master weights — how a hardware-aware training
        dispatch ships its quantized(+noisy) weights to the replicas.
        The override lasts until the next dispatch re-syncs.
        """
        source = (weights if weights is not None
                  else [layer.weight for layer in self.network.layers])
        if len(source) != len(self._weight_views):
            raise ValueError(
                f"expected {len(self._weight_views)} weight arrays, "
                f"got {len(source)}")
        for view, weight in zip(self._weight_views, source):
            np.copyto(view, weight)

    # -- message plumbing ---------------------------------------------------
    def _recv(self, index: int, timeout: float | None = None):
        conn = self._conns[index]
        timeout = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        while not conn.poll(0.2):
            if not self._procs[index].is_alive():
                # A dead worker's pipe may still hold completed replies;
                # drain those before declaring the transport broken.
                if conn.poll(0):
                    break
                raise PoolTransportError(
                    f"pool worker {index} died (exit code "
                    f"{self._procs[index].exitcode})", workers=(index,))
            if time.monotonic() > deadline:
                self._c_timeouts.inc()
                raise PoolTransportError(
                    f"pool worker {index} unresponsive after "
                    f"{timeout:.0f}s", workers=(index,))
        try:
            reply = conn.recv()
            status, payload = reply
            if status not in ("ready", "ok", "error"):
                raise ValueError(f"unknown reply status {status!r}")
        except (WorkerError, PoolTransportError):
            raise
        except Exception as exc:
            # EOF mid-message, an unpicklable stream, or a reply that is
            # not a valid (status, payload) pair: the pipe contents can
            # no longer be paired with commands.
            raise PoolTransportError(
                f"pool worker {index} sent a corrupt reply ({exc!r})",
                workers=(index,)) from exc
        if status == "error":
            raise WorkerError(
                f"pool worker {index} raised:\n{payload}")
        return payload

    #: Commands in flight per worker before the master waits for replies.
    _WINDOW = 4
    #: In-flight pickled command bytes per worker.  Kept under a quarter of
    #: the smallest common OS pipe buffer (64 KiB) so a send can never
    #: block on a pipe the worker has stopped draining: a master blocked
    #: in send() while the worker is blocked sending a large reply would
    #: deadlock with no timeout (Connection.send has no deadline).  A
    #: single command bigger than this is sent only to an *idle* worker —
    #: idle means it is blocked in recv(), actively draining the pipe, so
    #: an arbitrarily large send still streams through.
    _WINDOW_BYTES = 1 << 14

    def _dispatch(self, assignments, timeout: float | None = None):
        """Counted + traced wrapper around :meth:`_dispatch_inner`."""
        self._c_dispatches.inc()
        with _obs.span("pool.dispatch", commands=len(assignments),
                       workers=len({w for w, _ in assignments})):
            return self._dispatch_inner(assignments, timeout=timeout)

    def _dispatch_inner(self, assignments, timeout: float | None = None):
        """Send ``[(worker, msg), ...]`` and collect replies in list order.

        Sends are interleaved with receives, bounded per worker both in
        count (:attr:`_WINDOW`) and in pickled bytes
        (:attr:`_WINDOW_BYTES`).  Pipes are FIFO per worker, so replies
        pair with commands in send order; results are reassembled into
        the original sequence.

        Failure handling:

        * :class:`WorkerError` (user code raised in a worker): the
          remaining in-flight replies are drained first (the workers
          themselves survive — they caught the exception) so the pipes
          stay aligned with the protocol and the pool remains usable,
          then the error propagates.  Never retried.
        * :class:`PoolTransportError` (dead / hung / corrupt worker):
          the supervisor respawns the failed workers and their in-flight
          commands are requeued — results stay bitwise-equal to a
          fault-free run because the staged arenas, the command bytes
          and the rebuilt replicas are all identical.  After
          ``restart_policy.max_restarts`` heal rounds the pool closes
          and the transport error propagates.
        """
        self._check_open()
        queues: dict[int, collections.deque] = {}
        bufs: list[bytes] = [b""] * len(assignments)
        for position, (worker, msg) in enumerate(assignments):
            buf = pickle.dumps(msg)
            bufs[position] = buf
            queues.setdefault(worker, collections.deque()).append(
                (position, buf))
        inflight = {worker: collections.deque() for worker in queues}
        inflight_bytes = {worker: 0 for worker in queues}
        results = [None] * len(assignments)

        def can_send(worker) -> bool:
            queue = queues[worker]
            if not queue or len(inflight[worker]) >= self._WINDOW:
                return False
            nbytes = len(queue[0][1])
            if nbytes > self._WINDOW_BYTES:
                return not inflight[worker]  # oversized: idle worker only
            return inflight_bytes[worker] + nbytes <= self._WINDOW_BYTES

        def send_pending() -> None:
            for worker in queues:
                while can_send(worker):
                    position, buf = queues[worker][0]
                    try:
                        self._conns[worker].send_bytes(buf)
                    except (BrokenPipeError, OSError) as exc:
                        # The command never entered the pipe (connection
                        # side is gone); leave it queued for the heal.
                        raise PoolTransportError(
                            f"pool worker {worker} pipe broke on send "
                            f"({exc!r})", workers=(worker,)) from exc
                    queues[worker].popleft()
                    inflight[worker].append((position, len(buf)))
                    inflight_bytes[worker] += len(buf)

        heal_rounds = 0
        to_heal: tuple = ()
        while True:
            try:
                # Healing runs inside the try: a replacement worker that
                # fails its handshake re-enters the bounded handler below
                # instead of escaping the retry loop.
                if to_heal:
                    failed, to_heal = to_heal, ()
                    self._heal(failed, queues, inflight, inflight_bytes,
                               bufs)
                while any(queues.values()) or any(inflight.values()):
                    send_pending()
                    worker = self._wait_any(
                        [w for w, pending in inflight.items() if pending],
                        timeout=timeout)
                    position, nbytes = inflight[worker][0]
                    try:
                        results[position] = self._recv(worker,
                                                       timeout=timeout)
                    except WorkerError:
                        # The "error" reply WAS consumed — account for it
                        # before draining so the drain does not wait for
                        # a reply that already arrived.
                        inflight[worker].popleft()
                        inflight_bytes[worker] -= nbytes
                        raise
                    inflight[worker].popleft()
                    inflight_bytes[worker] -= nbytes
                return results
            except WorkerError:
                # Deterministic user-code failure: drain, stay open,
                # never retry.  (Unsent queue entries never reached a
                # pipe, so dropping them cannot desynchronize anything.)
                self._drain({w: len(pending)
                             for w, pending in inflight.items()})
                raise
            except PoolTransportError as exc:
                if self._closed:
                    raise  # healing a closing pool would resurrect it
                heal_rounds += 1
                if heal_rounds > self._supervisor.policy.max_restarts:
                    self.close()
                    raise
                to_heal = exc.workers

    def _heal(self, failed, queues, inflight, inflight_bytes, bufs) -> None:
        """Respawn ``failed`` workers and requeue their in-flight commands.

        Requeued commands go to the *front* of the worker's queue in
        their original send order, so the replacement worker replays the
        exact FIFO the failed one saw.  Raises
        :class:`PoolTransportError` if a replacement fails its
        handshake — the caller's bounded loop counts that as another
        heal round.
        """
        for worker in failed:
            pending = inflight.get(worker)
            if pending is None:
                # Failure outside this dispatch's worker set (e.g. the
                # handshake of a previous heal): respawn only.
                self._supervisor.restart(worker)
                continue
            requeued = [(position, bufs[position])
                        for position, _ in pending]
            self._c_retries.inc(len(requeued))
            _obs.event("pool.retry", worker=worker, requeued=len(requeued))
            queues[worker].extendleft(reversed(requeued))
            pending.clear()
            inflight_bytes[worker] = 0
            self._supervisor.restart(worker)

    def _wait_any(self, workers: list[int],
                  timeout: float | None = None) -> int:
        """Block until one of ``workers`` has a reply ready; return it."""
        from multiprocessing.connection import wait as _conn_wait

        timeout = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        conn_to_worker = {self._conns[w]: w for w in workers}
        while True:
            ready = _conn_wait(list(conn_to_worker), timeout=0.2)
            if ready:
                return conn_to_worker[ready[0]]
            for worker in workers:
                if not self._procs[worker].is_alive():
                    raise PoolTransportError(
                        f"pool worker {worker} died (exit code "
                        f"{self._procs[worker].exitcode})",
                        workers=(worker,))
            if time.monotonic() > deadline:
                # No way to tell which of the awaited workers hung;
                # the heal replaces all of them.
                self._c_timeouts.inc(len(workers))
                raise PoolTransportError(
                    f"pool workers {workers} unresponsive after "
                    f"{timeout:.0f}s", workers=tuple(workers))

    def _drain(self, outstanding: dict[int, int]) -> None:
        """Consume (and discard) in-flight replies after a dispatch in
        which some worker raised.

        Leaving them queued would permanently desynchronize the pipes —
        the next dispatch would read the previous dispatch's replies as
        its own.  If a worker does not deliver during the drain, the pool
        is closed so later use fails loudly instead of silently
        misattributing results.
        """
        try:
            for worker, count in outstanding.items():
                for _ in range(count):
                    try:
                        self._recv(worker)
                    except WorkerError:
                        continue  # an "error" reply: consumed, re-aligned
        except Exception:  # dead/hung worker: the pipes cannot be trusted
            self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def _stage(self, tag: str, array: np.ndarray):
        arena = self._arenas[tag]
        arena.ensure(array.nbytes)
        view = arena.view(array.shape, array.dtype)
        np.copyto(view, array)
        return arena

    # -- high-level dispatches ----------------------------------------------
    #: Cap on shared memory staged per inference window (inputs +
    #: outputs), overridable via ``REPRO_ARENA_CAP_BYTES``.  Bounds peak
    #: /dev/shm use for large evaluation sets — run_in_batches exists to
    #: bound memory, and the pooled path must honour that contract (a
    #: default Docker ``/dev/shm`` is 64 MB).  Windows are whole multiples
    #: of ``batch_size``, so the chunk boundaries — and therefore the
    #: outputs — stay identical to the serial path.
    ARENA_CAP_BYTES = int(os.environ.get("REPRO_ARENA_CAP_BYTES",
                                         256 * 1024 * 1024))

    def _window_samples(self, row_bytes: int, batch_size: int) -> int:
        """Samples per bounded staging window.

        Always a whole multiple of ``batch_size`` (at least one batch) —
        the serial-equality guarantee depends on window boundaries
        falling on the serial path's chunk boundaries.
        """
        return max(
            batch_size,
            self.ARENA_CAP_BYTES // max(row_bytes, 1)
            // batch_size * batch_size,
        )

    def run_sharded(self, inputs: np.ndarray, batch_size: int,
                    engine: str = "fused", precision=None,
                    neuron_kind: str | None = None,
                    timeout: float | None = None) -> np.ndarray:
        """Forward-only inference over ``inputs``, chunked exactly like the
        serial ``run_in_batches`` and distributed round-robin.

        Returns the concatenated ``(n, T, n_out)`` outputs — bitwise equal
        to the serial path because the per-chunk computations are the same
        calls on the same chunk boundaries.  Inputs larger than
        :attr:`ARENA_CAP_BYTES` are staged and dispatched in bounded
        windows of whole chunks.

        ``timeout`` overrides the pool-wide reply timeout for this call
        only — latency-sensitive callers (serving ticks) should not
        share a 600 s training default.
        """
        from ..core.engine import resolve_precision

        self.sync_weights()
        dtype = resolve_precision(precision) or np.dtype(np.float64)
        inputs = np.asarray(inputs, dtype=dtype)
        n, steps, n_in = inputs.shape
        n_out = self.network.sizes[-1]
        row_bytes = steps * n_in * dtype.itemsize
        out_row_bytes = steps * n_out * dtype.itemsize
        window = self._window_samples(row_bytes + out_row_bytes, batch_size)
        outputs = np.empty((n, steps, n_out), dtype=dtype)
        for window_start in range(0, n, window):
            count = min(window, n - window_start)
            self._run_window(inputs[window_start:window_start + count],
                             outputs[window_start:window_start + count],
                             batch_size, engine, precision, neuron_kind,
                             timeout)
        return outputs

    def _run_window(self, inputs, outputs, batch_size, engine, precision,
                    neuron_kind, timeout=None) -> None:
        """Stage one bounded window and dispatch its chunks round-robin."""
        n, steps, _ = inputs.shape
        n_out = outputs.shape[2]
        dtype = inputs.dtype
        in_arena = self._stage("inputs", inputs)
        out_arena = self._arenas["outputs"]
        out_arena.ensure(n * steps * n_out * dtype.itemsize)
        row_bytes = steps * inputs.shape[2] * dtype.itemsize
        out_row_bytes = steps * n_out * dtype.itemsize
        assignments = []
        for index, start in enumerate(range(0, n, batch_size)):
            count = min(batch_size, n - start)
            msg = {
                "cmd": "forward",
                "in": in_arena.ref((count, steps, inputs.shape[2]), dtype,
                                   offset=start * row_bytes),
                "out": out_arena.ref((count, steps, n_out), dtype,
                                     offset=start * out_row_bytes),
                "engine": engine,
                "precision": precision,
                "neuron_kind": neuron_kind,
            }
            assignments.append((index % self.workers, msg))
        self._dispatch(assignments, timeout=timeout)
        np.copyto(outputs, out_arena.view((n, steps, n_out), dtype))

    def grad_shards(self, inputs: np.ndarray, targets: np.ndarray,
                    slices: list[slice], mode: str = "exact",
                    engine: str = "fused", precision=None, weights=None,
                    timeout: float | None = None):
        """Run one gradient shard per worker; returns per-shard
        ``(loss, n, grads)`` in shard order (the fixed reduction order).

        ``weights`` stages per-layer override arrays into the shared
        weight block for this dispatch (see :meth:`sync_weights`): the
        workers then run forward *and* backward through the override —
        the pooled execution of hardware-aware training's
        straight-through estimator, bitwise-equal to the serial
        ``shard_grads(..., weights=...)`` of the same shard split.
        """
        from ..core.engine import resolve_precision

        if len(slices) > self.workers:
            raise ValueError(
                f"{len(slices)} shards for {self.workers} workers")
        self.sync_weights(weights)
        dtype = resolve_precision(precision) or np.dtype(np.float64)
        # The reference backward always produces float64 gradients
        # regardless of the forward precision; only the fused engine
        # keeps them in ``precision``.  The arena dtype must match what
        # the workers actually compute, or copying into it would downcast
        # and diverge from the serial path.
        grad_dtype = dtype if engine == "fused" else np.dtype(np.float64)
        inputs = np.asarray(inputs, dtype=dtype)
        targets = np.asarray(targets)
        in_arena = self._stage("inputs", inputs)
        t_arena = self._stage("targets", targets)

        shapes = [layer.weight.shape for layer in self.network.layers]
        layer_bytes = [_aligned(int(np.prod(s)) * grad_dtype.itemsize)
                       for s in shapes]
        region = sum(layer_bytes)
        g_arena = self._arenas["grads"]
        g_arena.ensure(region * len(slices))

        row_bytes = int(np.prod(inputs.shape[1:])) * inputs.dtype.itemsize
        t_row_bytes = (int(np.prod(targets.shape[1:], dtype=np.int64))
                       * targets.dtype.itemsize)
        assignments = []
        grad_refs_per_shard = []
        for index, sl in enumerate(slices):
            count = sl.stop - sl.start
            base = index * region
            grad_refs, cursor = [], base
            for shape, nbytes in zip(shapes, layer_bytes):
                grad_refs.append(g_arena.ref(shape, grad_dtype,
                                             offset=cursor))
                cursor += nbytes
            grad_refs_per_shard.append(grad_refs)
            msg = {
                "cmd": "grad",
                "in": in_arena.ref((count,) + inputs.shape[1:], dtype,
                                   offset=sl.start * row_bytes),
                "targets": t_arena.ref((count,) + targets.shape[1:],
                                       targets.dtype,
                                       offset=sl.start * t_row_bytes),
                "grads": grad_refs,
                "mode": mode,
                "engine": engine,
                "precision": precision,
            }
            assignments.append((index, msg))
        replies = self._dispatch(assignments, timeout=timeout)
        results = []
        for (loss_value, shard_n), grad_refs in zip(replies,
                                                    grad_refs_per_shard):
            grads = [g_arena.view(ref["shape"], ref["dtype"],
                                  offset=ref["offset"])
                     for ref in grad_refs]
            results.append((loss_value, shard_n, grads))
        return results

    def hw_eval(self, inputs: np.ndarray, labels: np.ndarray, tasks,
                batch_size: int = 64, engine: str = "fused",
                precision=None, device=None,
                timeout: float | None = None) -> list[float]:
        """One Fig. 8 accuracy per ``(bits, variation, seed)`` task.

        The evaluation set and labels are staged in shared memory for the
        whole task list — in bounded sample windows when the set exceeds
        :attr:`ARENA_CAP_BYTES` — and the pipes carry only the grid
        coordinates.  Each window returns per-task correct *counts*
        (exactly reproducible because the seed fully determines the
        programming draw), so the summed accuracies equal the
        full-set serial evaluation's.

        ``device`` (a picklable
        :class:`~repro.hardware.devices.RRAMDeviceConfig`, or ``None``)
        rides the command dict to every task as the base device model the
        grid coordinates override — how a served hardware profile's
        window/read-noise parameters reach a pooled sweep.
        """
        self.sync_weights()
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels)
        tasks = list(tasks)
        n = inputs.shape[0]
        row_bytes = int(np.prod(inputs.shape[1:])) * inputs.dtype.itemsize
        window = self._window_samples(row_bytes, batch_size)
        counts = [0] * len(tasks)
        for window_start in range(0, n, window):
            stop = min(window_start + window, n)
            in_window = inputs[window_start:stop]
            labels_window = labels[window_start:stop]
            in_ref = self._stage("inputs", in_window).ref(
                in_window.shape, in_window.dtype)
            labels_ref = self._stage("targets", labels_window).ref(
                labels_window.shape, labels_window.dtype)
            assignments = [
                (index % self.workers, {
                    "cmd": "hw_eval", "in": in_ref, "labels": labels_ref,
                    "bits": int(bits), "variation": float(variation),
                    "seed": int(seed), "batch_size": int(batch_size),
                    "engine": engine, "precision": precision,
                    "device": device,
                })
                for index, (bits, variation, seed) in enumerate(tasks)
            ]
            for index, count in enumerate(
                    self._dispatch(assignments, timeout=timeout)):
                counts[index] += count
        return [count / n for count in counts]

    def map(self, fn, items, timeout: float | None = None) -> list:
        """``[fn(item) for item in items]`` over the workers, in order."""
        assignments = [
            (index % self.workers, {"cmd": "task", "payload": (fn, item)})
            for index, item in enumerate(items)
        ]
        return self._dispatch(assignments, timeout=timeout)

    # -- lifecycle ----------------------------------------------------------
    #: Seconds granted per escalation stage in :meth:`close` (stop →
    #: terminate → kill).  A class attribute so tests exercising the
    #: escalation can shrink it without waiting out real grace periods.
    _CLOSE_GRACE_S = 5.0

    def close(self) -> None:
        """Stop the workers and free every shared-memory block.

        Escalates per worker: a cooperative ``stop`` command, then
        SIGTERM, then SIGKILL — a signal-ignoring worker must not leak
        its process and pinned shared memory.  Idempotent, and
        deliberately quiet: it is the path taken after transport
        failures (dead/hung workers) and from ``__del__`` or the
        atexit hook at interpreter shutdown, so every step tolerates
        already-broken pipes and already-gone processes instead of
        raising or warning (pinned by ``tests/unit/test_runtime.py``).
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for conn in self._conns:
            try:
                conn.send({"cmd": "stop"})
            except (BrokenPipeError, OSError, ValueError):
                pass
        for proc in self._procs:
            try:
                proc.join(timeout=self._CLOSE_GRACE_S)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=self._CLOSE_GRACE_S)
                if proc.is_alive():  # SIGTERM ignored: escalate
                    proc.kill()
                    proc.join(timeout=self._CLOSE_GRACE_S)
            except (OSError, ValueError, AssertionError):
                pass  # pragma: no cover - interpreter teardown races
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        for arena in self._arenas.values():
            arena.close()
        if self._weights_shm is not None:
            self._weight_views = []
            self._weights_shm.close()
            try:
                self._weights_shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._weights_shm = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        arch = ("-".join(str(s) for s in self.network.sizes)
                if self.network is not None else "generic")
        return f"WorkerPool({arch}, workers={self.workers}, {state})"


class PoolCache:
    """Worker pools shared across the grid cells of a scenario run.

    A full harness grid touches the same (network, workers) pair dozens of
    times — train-step cells, inference cells, variation-sweep seeds.
    Spawning a fresh :class:`WorkerPool` per cell would pay process
    startup and shared-memory setup over and over; the cache keys live
    pools by ``(id(network), workers)`` and hands the same pool back for
    every cell that asks, closing them all at context exit.

    Keying by object identity is deliberate: a pool's workers hold
    replicas of one concrete network whose weights are synced through
    shared memory — two equal-shaped but distinct networks must not share
    a pool.  The cache keeps a reference to each keyed network so an id
    cannot be recycled while its pool lives.
    """

    def __init__(self):
        self._pools: dict = {}
        self._networks: dict = {}

    def get(self, network, workers: int) -> "WorkerPool":
        if workers < 1:
            raise ValueError(f"a pooled cell needs workers >= 1, "
                             f"got {workers}")
        key = (id(network), int(workers))
        pool = self._pools.get(key)
        if pool is None:
            pool = WorkerPool(network, workers=workers)
            self._pools[key] = pool
            self._networks[key] = network
        return pool

    def __len__(self) -> int:
        return len(self._pools)

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()
        self._networks.clear()

    def __enter__(self) -> "PoolCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
